package core

import (
	"context"
	"fmt"
	"sync"

	"hybridwh/internal/batch"
	"hybridwh/internal/bloom"
	"hybridwh/internal/compress"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/skew"
	"hybridwh/internal/types"
)

// The wire protocol shared by every algorithm. Row streams are identified
// by a per-query stream name; each sender ends its stream to each receiver
// with one EOS message, so receivers know completion without any global
// coordinator. Per-(sender, receiver) bus ordering guarantees all of a
// sender's rows precede its EOS. A sender that fails mid-query terminates
// its streams with MsgError instead (batcher.CloseWith, Engine.sendAbort);
// receivers treat an incoming MsgError as a terminal classified error, and
// the per-query context unblocks any receive the abort never reached (see
// abort.go).

// batcher accumulates rows per destination in columnar batches and ships
// them as MsgRows messages, recording tuple and byte counters against the
// sending worker. The wire encoding (batch.EncodeBatch) is byte-identical
// to types.EncodeRows over the same rows, and a buffer flushes exactly when
// it reaches cfg.BatchRows rows, so message boundaries — and therefore the
// byte counters — match the seed's row-at-a-time batcher bit for bit.
//
// A batcher is safe for concurrent use: morsel workers (Config.WorkerThreads
// > 1) feed one shared batcher per stream under its mutex. Sharing — rather
// than one batcher per thread — is what keeps the message counts
// deterministic: a destination's buffer still flushes exactly when it
// reaches cfg.BatchRows rows, so per-destination message and byte totals
// depend only on the row totals, not on which thread appended which row.
type batcher struct {
	e      *Engine
	ctx    context.Context
	from   string
	stream string
	size   int
	dests  []string

	mu   sync.Mutex
	bufs map[string]*batch.Batch // guarded by mu

	// Counter names (vector counters, indexed by slot); empty to skip.
	tupleCounter string
	byteCounter  string
	slot         int

	tuples int64 // guarded by mu
}

// newBatcher creates a batcher. dests is the full set of endpoints this
// sender may target; EOS goes to all of them on Close. The query context
// is checked at every flush, so a canceled query stops shipping batches
// instead of streaming its table to completion.
func (e *Engine) newBatcher(ctx context.Context, from, stream string, dests []string, tupleCounter, byteCounter string, slot int) *batcher {
	return &batcher{
		e: e, ctx: ctx, from: from, stream: stream, size: e.cfg.BatchRows,
		dests: dests, bufs: map[string]*batch.Batch{},
		tupleCounter: tupleCounter, byteCounter: byteCounter, slot: slot,
	}
}

// bufLocked returns dest's buffer, creating it with the stream's row width
// on first use (all rows of one stream share a layout). Callers hold mu.
func (b *batcher) bufLocked(dest string, ncols int) *batch.Batch {
	bb := b.bufs[dest]
	if bb == nil {
		bb = batch.New(ncols, b.size)
		b.bufs[dest] = bb
	}
	return bb
}

// sendLocked queues one row for dest, flushing a full batch. Callers hold mu.
func (b *batcher) sendLocked(dest string, row types.Row) error {
	bb := b.bufLocked(dest, len(row))
	bb.AppendRow(row)
	b.tuples++
	if bb.Full() {
		return b.flushLocked(dest)
	}
	return nil
}

// send queues one row for dest, flushing a full batch.
func (b *batcher) send(dest string, row types.Row) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sendLocked(dest, row)
}

// broadcast queues one row for every destination.
func (b *batcher) broadcast(row types.Row) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.dests {
		if err := b.sendLocked(d, row); err != nil {
			return err
		}
	}
	return nil
}

// sendRows queues a materialized row slice for one destination.
func (b *batcher) sendRows(dest string, rows []types.Row) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, r := range rows {
		if err := b.sendLocked(dest, r); err != nil {
			return err
		}
	}
	return nil
}

// scatterRows routes each row by its key column through destOf.
func (b *batcher) scatterRows(rows []types.Row, keyIdx int, destOf func(key int64) string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, r := range rows {
		if err := b.sendLocked(destOf(r[keyIdx].Int()), r); err != nil {
			return err
		}
	}
	return nil
}

// scatterRowsHybrid routes cold rows by destOf and replicates hot rows to
// every destination — the small side of the hybrid skew treatment: a hot
// T' row must be present wherever its scattered L' partners landed.
// Tuples count once per copy, exactly as broadcast does, so the counters
// reflect what actually crossed the interconnect.
func (b *batcher) scatterRowsHybrid(rows []types.Row, keyIdx int, hot *skew.HotSet, destOf func(key int64) string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, r := range rows {
		k := r[keyIdx].Int()
		if hot.Contains(k) {
			for _, d := range b.dests {
				if err := b.sendLocked(d, r); err != nil {
					return err
				}
			}
			continue
		}
		if err := b.sendLocked(destOf(k), r); err != nil {
			return err
		}
	}
	return nil
}

// broadcastRows queues a materialized row slice for every destination.
func (b *batcher) broadcastRows(rows []types.Row) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, r := range rows {
		for _, d := range b.dests {
			if err := b.sendLocked(d, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// sendBatchLocked queues every live row of src for dest. Callers hold mu.
func (b *batcher) sendBatchLocked(dest string, src *batch.Batch, proj []int) error {
	ncols := src.NumCols()
	if proj != nil {
		ncols = len(proj)
	}
	bb := b.bufLocked(dest, ncols)
	return src.Each(func(i int) error {
		bb.AppendFrom(src, i, proj)
		b.tuples++
		if bb.Full() {
			return b.flushLocked(dest)
		}
		return nil
	})
}

// sendBatch queues every live row of src for dest, projected through proj
// (src column indexes; nil copies positionally). src is on loan: its values
// are copied into the destination buffer.
func (b *batcher) sendBatch(dest string, src *batch.Batch, proj []int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sendBatchLocked(dest, src, proj)
}

// scatterBatch routes every live row of src by its key column (an index
// into src's physical layout, read before projection) through destOf,
// projecting each row through proj into the destination buffer.
func (b *batcher) scatterBatch(src *batch.Batch, proj []int, keyIdx int, destOf func(key int64) string) error {
	ncols := src.NumCols()
	if proj != nil {
		ncols = len(proj)
	}
	keys := src.Col(keyIdx)
	b.mu.Lock()
	defer b.mu.Unlock()
	return src.Each(func(i int) error {
		dest := destOf(keys[i].Int())
		bb := b.bufLocked(dest, ncols)
		bb.AppendFrom(src, i, proj)
		b.tuples++
		if bb.Full() {
			return b.flushLocked(dest)
		}
		return nil
	})
}

// broadcastBatch queues every live row of src for every destination.
// Tuples are counted once per copy, exactly as per-row broadcast does.
func (b *batcher) broadcastBatch(src *batch.Batch, proj []int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, d := range b.dests {
		if err := b.sendBatchLocked(d, src, proj); err != nil {
			return err
		}
	}
	return nil
}

// flushLocked ships dest's buffered rows as one framed message. Callers
// hold mu.
func (b *batcher) flushLocked(dest string) error {
	bb := b.bufs[dest]
	if bb == nil || bb.Size() == 0 {
		return nil
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			return fmt.Errorf("core: %s send %s: %w", b.from, b.stream, context.Cause(b.ctx))
		}
	}
	payload := batch.EncodeBatch(bb)
	bb.Reset()
	if b.e.cfg.WireCompression {
		// Frame compression (Config.WireCompression): the byte counters see
		// the compressed size — what actually crosses the interconnect.
		payload = compress.Encode(payload)
	}
	if b.byteCounter != "" {
		b.e.rec.AddAt(b.byteCounter, b.slot, int64(len(payload)))
	}
	return b.e.bus.Send(b.from, dest, netsim.Msg{Type: netsim.MsgRows, Stream: b.stream, Payload: payload})
}

// Close flushes every buffer and sends EOS to every destination. It must
// run even on error paths (usually via defer) so receivers never hang —
// and a send failure to one destination must not drop the partial buffers
// of the others, so every flush is attempted. It runs after the feeding
// workers have joined, so the lock is uncontended; holding it keeps the
// guard invariant unconditional.
func (b *batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var firstErr error
	for _, d := range b.dests {
		if err := b.flushLocked(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, d := range b.dests {
		if err := b.e.bus.Send(b.from, d, netsim.Msg{Type: netsim.MsgEOS, Stream: b.stream}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if b.tupleCounter != "" {
		b.e.rec.AddAt(b.tupleCounter, b.slot, b.tuples)
	}
	return firstErr
}

// CloseWith completes the stream one way or the other: with runErr == nil it
// is Close (flush everything, EOS everywhere); with a failure it drops the
// buffered rows and broadcasts MsgError carrying runErr's classification, so
// every receiver fails fast instead of counting an EOS that will never come.
// The tuple counter still records what was actually shipped.
func (b *batcher) CloseWith(runErr error) error {
	if runErr == nil {
		return b.Close()
	}
	err := b.e.sendAbort(b.from, b.stream, runErr, b.dests)
	if b.tupleCounter != "" {
		b.mu.Lock()
		tuples := b.tuples
		b.mu.Unlock()
		b.e.rec.AddAt(b.tupleCounter, b.slot, tuples)
	}
	return err
}

// recvBatches drains the stream at endpoint `at` until `senders` EOS
// messages arrive, invoking fn for every decoded batch. The batch passed to
// fn is on loan — it is reused for the next message, so fn must copy
// (Clone, InsertBatch, …) anything it keeps. With senders == 0 it returns
// immediately.
//
// Failure semantics: a decode failure or an fn error is recorded (first
// error wins) and the loop keeps draining until every EOS arrives, so
// senders are never left blocked on this receiver's backpressure. An
// incoming MsgError is terminal — a peer aborted the stream — and so is
// cancellation of the per-query context; both return immediately, relying
// on the abort teardown (router Unroute release + context cancellation) to
// unblock the remaining senders.
func (e *Engine) recvBatches(ctx context.Context, at, stream string, senders int, fn func(b *batch.Batch) error) error {
	if senders == 0 {
		return nil
	}
	r := e.routers[at]
	rows, err := r.Route(netsim.MsgRows, stream)
	if err != nil {
		return err
	}
	eos, err := r.Route(netsim.MsgEOS, stream)
	if err != nil {
		return err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		return err
	}
	defer r.Unroute(netsim.MsgRows, stream)
	defer r.Unroute(netsim.MsgEOS, stream)
	defer r.Unroute(netsim.MsgError, stream)

	decoded := batch.New(0, 0)
	var consumeErr error
	consume := func(env netsim.Envelope) {
		if consumeErr != nil {
			return // already failed; keep draining the protocol
		}
		payload := env.Payload
		if e.cfg.WireCompression {
			raw, err := compress.Decode(payload)
			if err != nil {
				consumeErr = fmt.Errorf("core: %s decompressing %s from %s: %w", at, stream, env.From, err)
				return
			}
			payload = raw
		}
		if err := batch.DecodeBatch(payload, decoded); err != nil {
			consumeErr = fmt.Errorf("core: %s decoding %s from %s: %w", at, stream, env.From, err)
			return
		}
		if decoded.Len() == 0 {
			return
		}
		if err := fn(decoded); err != nil {
			consumeErr = err
		}
	}

	for remaining := senders; remaining > 0; {
		select {
		case env := <-rows:
			consume(env)
		case <-eos:
			remaining--
		case env := <-abort:
			return decodeAbort(at, stream, env)
		case <-ctx.Done():
			return ctxAbort(ctx, at, stream)
		}
	}
	// Bus ordering: each sender's rows precede its EOS, and the router
	// dispatches sequentially, so by the final EOS every row is buffered.
	// Leftover frames go through the same consume as the main loop —
	// decode-checked, first error wins.
	for {
		select {
		case env := <-rows:
			consume(env)
		default:
			return consumeErr
		}
	}
}

// recvRows is the row-at-a-time adapter over recvBatches: every received
// row is materialized into fresh storage, so fn may retain it.
func (e *Engine) recvRows(ctx context.Context, at, stream string, senders int, fn func(row types.Row) error) error {
	return e.recvBatches(ctx, at, stream, senders, func(b *batch.Batch) error {
		return b.Each(func(i int) error {
			return fn(b.CloneRow(i))
		})
	})
}

// collectRows is recvRows into a slice.
func (e *Engine) collectRows(ctx context.Context, at, stream string, senders int) ([]types.Row, error) {
	var out []types.Row
	err := e.recvRows(ctx, at, stream, senders, func(r types.Row) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// collectBatches is recvBatches into a slice of cloned batches, returning
// the total live row count alongside.
func (e *Engine) collectBatches(ctx context.Context, at, stream string, senders int) ([]*batch.Batch, int64, error) {
	var out []*batch.Batch
	var n int64
	err := e.recvBatches(ctx, at, stream, senders, func(b *batch.Batch) error {
		out = append(out, b.Clone())
		n += int64(b.Len())
		return nil
	})
	return out, n, err
}

// sendBloom ships a marshalled filter to the destinations, counting the
// bytes moved (the paper's 16 MB filters are visible in the cost model).
func (e *Engine) sendBloom(from, stream string, bf *bloom.Filter, dests []string) error {
	payload := bf.Marshal()
	for _, d := range dests {
		e.rec.Add(metrics.BloomBytes, int64(len(payload)))
		if err := e.bus.Send(from, d, netsim.Msg{Type: netsim.MsgBloom, Stream: stream, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// recvBloom receives `parts` filters at an endpoint and returns their
// union (parts == 1 is a plain receive). Like recvBatches, a bad part is
// recorded and the loop keeps collecting the remaining parts so senders are
// never stranded; an incoming MsgError or context cancellation is terminal.
func (e *Engine) recvBloom(ctx context.Context, at, stream string, parts int) (*bloom.Filter, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgBloom, stream)
	if err != nil {
		return nil, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgBloom, stream)
		return nil, err
	}
	defer r.Unroute(netsim.MsgBloom, stream)
	defer r.Unroute(netsim.MsgError, stream)
	var out *bloom.Filter
	var consumeErr error
	for i := 0; i < parts; i++ {
		select {
		case env := <-ch:
			if consumeErr != nil {
				continue // already failed; keep draining the protocol
			}
			bf, err := bloom.Unmarshal(env.Payload)
			if err != nil {
				consumeErr = fmt.Errorf("core: %s bloom %s from %s: %w", at, stream, env.From, err)
				continue
			}
			if out == nil {
				out = bf
			} else if err := out.Union(bf); err != nil {
				consumeErr = err
			}
		case env := <-abort:
			return nil, decodeAbort(at, stream, env)
		case <-ctx.Done():
			return nil, ctxAbort(ctx, at, stream)
		}
	}
	if consumeErr != nil {
		return nil, consumeErr
	}
	return out, nil
}

// jenNames returns all JEN worker endpoint names.
func (e *Engine) jenNames() []string {
	out := make([]string, e.jen.Workers())
	for i := range out {
		out[i] = jenName(i)
	}
	return out
}

// dbNames returns all DB worker endpoint names.
func (e *Engine) dbNames() []string {
	out := make([]string, e.db.Workers())
	for i := range out {
		out[i] = dbName(i)
	}
	return out
}
