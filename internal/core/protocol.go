package core

import (
	"fmt"

	"hybridwh/internal/bloom"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/types"
)

// The wire protocol shared by every algorithm. Row streams are identified
// by a per-query stream name; each sender ends its stream to each receiver
// with one EOS message, so receivers know completion without any global
// coordinator. Per-(sender, receiver) bus ordering guarantees all of a
// sender's rows precede its EOS.

// batcher accumulates rows per destination and ships them as MsgRows
// batches, recording tuple and byte counters against the sending worker.
type batcher struct {
	e      *Engine
	from   string
	stream string
	size   int
	dests  []string
	bufs   map[string][]types.Row

	// Counter names (vector counters, indexed by slot); empty to skip.
	tupleCounter string
	byteCounter  string
	slot         int

	tuples int64
}

// newBatcher creates a batcher. dests is the full set of endpoints this
// sender may target; EOS goes to all of them on Close.
func (e *Engine) newBatcher(from, stream string, dests []string, tupleCounter, byteCounter string, slot int) *batcher {
	return &batcher{
		e: e, from: from, stream: stream, size: e.cfg.BatchRows,
		dests: dests, bufs: map[string][]types.Row{},
		tupleCounter: tupleCounter, byteCounter: byteCounter, slot: slot,
	}
}

// send queues one row for dest, flushing a full batch.
func (b *batcher) send(dest string, row types.Row) error {
	b.bufs[dest] = append(b.bufs[dest], row)
	b.tuples++
	if len(b.bufs[dest]) >= b.size {
		return b.flush(dest)
	}
	return nil
}

// broadcast queues one row for every destination.
func (b *batcher) broadcast(row types.Row) error {
	for _, d := range b.dests {
		if err := b.send(d, row); err != nil {
			return err
		}
	}
	return nil
}

func (b *batcher) flush(dest string) error {
	rows := b.bufs[dest]
	if len(rows) == 0 {
		return nil
	}
	payload := types.EncodeRows(rows)
	b.bufs[dest] = b.bufs[dest][:0]
	if b.byteCounter != "" {
		b.e.rec.AddAt(b.byteCounter, b.slot, int64(len(payload)))
	}
	return b.e.bus.Send(b.from, dest, netsim.Msg{Type: netsim.MsgRows, Stream: b.stream, Payload: payload})
}

// Close flushes every buffer and sends EOS to every destination. It must
// run even on error paths (usually via defer) so receivers never hang.
func (b *batcher) Close() error {
	var firstErr error
	for _, d := range b.dests {
		if err := b.flush(d); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, d := range b.dests {
		if err := b.e.bus.Send(b.from, d, netsim.Msg{Type: netsim.MsgEOS, Stream: b.stream}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if b.tupleCounter != "" {
		b.e.rec.AddAt(b.tupleCounter, b.slot, b.tuples)
	}
	return firstErr
}

// recvRows drains the stream at endpoint `at` until `senders` EOS messages
// arrive, invoking fn for every row. With senders == 0 it returns
// immediately.
func (e *Engine) recvRows(at, stream string, senders int, fn func(row types.Row) error) error {
	if senders == 0 {
		return nil
	}
	r := e.routers[at]
	rows, err := r.Route(netsim.MsgRows, stream)
	if err != nil {
		return err
	}
	eos, err := r.Route(netsim.MsgEOS, stream)
	if err != nil {
		return err
	}
	defer r.Unroute(netsim.MsgRows, stream)
	defer r.Unroute(netsim.MsgEOS, stream)

	var consumeErr error
	consume := func(env netsim.Envelope) error {
		batch, err := types.DecodeRows(env.Payload)
		if err != nil {
			return fmt.Errorf("core: %s decoding %s from %s: %w", at, stream, env.From, err)
		}
		if consumeErr != nil {
			return nil // already failed; keep draining the protocol
		}
		for _, row := range batch {
			if err := fn(row); err != nil {
				consumeErr = err
				return nil
			}
		}
		return nil
	}

	remaining := senders
	for remaining > 0 {
		select {
		case env := <-rows:
			if err := consume(env); err != nil {
				return err
			}
		case <-eos:
			remaining--
		}
	}
	// Bus ordering: each sender's rows precede its EOS, and the router
	// dispatches sequentially, so by the final EOS every row is buffered.
	for {
		select {
		case env := <-rows:
			if err := consume(env); err != nil {
				return err
			}
		default:
			return consumeErr
		}
	}
}

// collectRows is recvRows into a slice.
func (e *Engine) collectRows(at, stream string, senders int) ([]types.Row, error) {
	var out []types.Row
	err := e.recvRows(at, stream, senders, func(r types.Row) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// sendBloom ships a marshalled filter to the destinations, counting the
// bytes moved (the paper's 16 MB filters are visible in the cost model).
func (e *Engine) sendBloom(from, stream string, bf *bloom.Filter, dests []string) error {
	payload := bf.Marshal()
	for _, d := range dests {
		e.rec.Add(metrics.BloomBytes, int64(len(payload)))
		if err := e.bus.Send(from, d, netsim.Msg{Type: netsim.MsgBloom, Stream: stream, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// recvBloom receives `parts` filters at an endpoint and returns their
// union (parts == 1 is a plain receive).
func (e *Engine) recvBloom(at, stream string, parts int) (*bloom.Filter, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgBloom, stream)
	if err != nil {
		return nil, err
	}
	defer r.Unroute(netsim.MsgBloom, stream)
	var out *bloom.Filter
	for i := 0; i < parts; i++ {
		env := <-ch
		bf, err := bloom.Unmarshal(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("core: %s bloom %s from %s: %w", at, stream, env.From, err)
		}
		if out == nil {
			out = bf
		} else if err := out.Union(bf); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// jenNames returns all JEN worker endpoint names.
func (e *Engine) jenNames() []string {
	out := make([]string, e.jen.Workers())
	for i := range out {
		out[i] = jenName(i)
	}
	return out
}

// dbNames returns all DB worker endpoint names.
func (e *Engine) dbNames() []string {
	out := make([]string, e.db.Workers())
	for i := range out {
		out[i] = dbName(i)
	}
	return out
}
