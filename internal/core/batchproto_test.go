package core

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"hybridwh/internal/batch"
	"hybridwh/internal/format"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/types"
)

// recordBus records every Send and can be told to fail sends to one
// destination. It implements netsim.Bus for batcher-level tests that need
// no routing.
type recordBus struct {
	failDest string
	sent     []netsim.Envelope // From abused to carry the destination
}

func (b *recordBus) Register(name string) (<-chan netsim.Envelope, error) {
	return make(chan netsim.Envelope), nil
}

func (b *recordBus) Send(from, to string, m netsim.Msg) error {
	if to == b.failDest {
		return fmt.Errorf("recordBus: %s unreachable", to)
	}
	b.sent = append(b.sent, netsim.Envelope{From: to, Msg: m})
	return nil
}

func (b *recordBus) Counters() *netsim.Counters { return nil }
func (b *recordBus) Close() error               { return nil }

func testEngine(bus netsim.Bus, batchRows int) *Engine {
	return &Engine{bus: bus, rec: metrics.New(), cfg: Config{BatchRows: batchRows}}
}

func wideRow(i int) types.Row {
	return types.Row{types.Int32(int32(i)), types.String(fmt.Sprintf("v%d", i))}
}

// TestBatcherKeepsOtherBuffersOnSendError is the ISSUE's fix check: when a
// flush to one destination fails mid-send, the partial buffers of the other
// destinations must still be flushed (and EOS'd) by Close, not dropped.
func TestBatcherKeepsOtherBuffersOnSendError(t *testing.T) {
	bus := &recordBus{failDest: "bad"}
	e := testEngine(bus, 4)
	b := e.newBatcher(context.Background(), "src", "s", []string{"good", "bad"}, "", "", 0)

	// Two rows buffer for "good" (below the flush threshold of 4)...
	for i := 0; i < 2; i++ {
		if err := b.send("good", wideRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	// ...then a full batch for "bad" flushes and fails.
	var sendErr error
	for i := 0; i < 4 && sendErr == nil; i++ {
		sendErr = b.send("bad", wideRow(100+i))
	}
	if sendErr == nil {
		t.Fatal("send to failing destination did not error")
	}
	if err := b.Close(); err == nil {
		t.Fatal("Close must surface the EOS failure to the bad destination")
	}

	var goodRows []types.Row
	eosSeen := false
	for _, env := range bus.sent {
		if env.From != "good" {
			t.Fatalf("message leaked to %s after its send failed", env.From)
		}
		switch env.Type {
		case netsim.MsgRows:
			rows, err := types.DecodeRows(env.Payload)
			if err != nil {
				t.Fatal(err)
			}
			goodRows = append(goodRows, rows...)
		case netsim.MsgEOS:
			eosSeen = true
		}
	}
	if len(goodRows) != 2 {
		t.Fatalf("good destination received %d rows, want its 2 buffered rows", len(goodRows))
	}
	for i, r := range goodRows {
		if !reflect.DeepEqual(r, wideRow(i)) {
			t.Fatalf("row %d = %v, want %v", i, r, wideRow(i))
		}
	}
	if !eosSeen {
		t.Fatal("good destination never received EOS")
	}
}

// TestBatchSendsMatchRowSends pins the wire-framing invariant: sendBatch and
// scatterBatch must produce the exact same message sequence (payload bytes,
// order, destinations) as per-row send over the same logical rows — that
// identity is what keeps the byte counters bit-identical to the seed.
func TestBatchSendsMatchRowSends(t *testing.T) {
	const size = 4
	rows := make([]types.Row, 11)
	for i := range rows {
		rows[i] = types.Row{types.Int32(int32(i % 3)), types.Int32(int32(i)), types.String(fmt.Sprintf("s%d", i))}
	}
	destOf := func(key int64) string { return fmt.Sprintf("d%d", key) }
	dests := []string{"d0", "d1", "d2"}

	rowBus := &recordBus{}
	rb := testEngine(rowBus, size).newBatcher(context.Background(), "src", "s", dests, "", "", 0)
	for _, r := range rows {
		if err := rb.send(destOf(r[0].Int()), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := rb.Close(); err != nil {
		t.Fatal(err)
	}

	// The same rows as two batches, scattered by the same key.
	batchBus := &recordBus{}
	bb := testEngine(batchBus, size).newBatcher(context.Background(), "src", "s", dests, "", "", 0)
	for lo := 0; lo < len(rows); lo += 6 {
		hi := lo + 6
		if hi > len(rows) {
			hi = len(rows)
		}
		sb := batch.New(3, hi-lo)
		for _, r := range rows[lo:hi] {
			sb.AppendRow(r)
		}
		if err := bb.scatterBatch(sb, nil, 0, destOf); err != nil {
			t.Fatal(err)
		}
	}
	if err := bb.Close(); err != nil {
		t.Fatal(err)
	}

	if len(rowBus.sent) != len(batchBus.sent) {
		t.Fatalf("message count %d vs %d", len(batchBus.sent), len(rowBus.sent))
	}
	for i := range rowBus.sent {
		want, got := rowBus.sent[i], batchBus.sent[i]
		if want.From != got.From || want.Type != got.Type {
			t.Fatalf("message %d: (%s,%v) vs (%s,%v)", i, got.From, got.Type, want.From, want.Type)
		}
		if !bytes.Equal(want.Payload, got.Payload) {
			t.Fatalf("message %d to %s: payload differs (%d vs %d bytes)", i, want.From, len(got.Payload), len(want.Payload))
		}
	}
}

// TestSendBatchHonorsSelectionAndProjection: deselected rows must not ship,
// and proj reorders columns like Row.Project.
func TestSendBatchHonorsSelectionAndProjection(t *testing.T) {
	bus := &recordBus{}
	e := testEngine(bus, 100)
	b := e.newBatcher(context.Background(), "src", "s", []string{"d"}, "", "", 0)
	sb := batch.New(3, 8)
	for i := 0; i < 8; i++ {
		sb.AppendRow(types.Row{types.Int32(int32(i)), types.String(fmt.Sprintf("s%d", i)), types.Int64(int64(100 + i))})
	}
	sb.SetSel([]int32{1, 4, 6})
	if err := b.sendBatch("d", sb, []int{2, 0}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	var got []types.Row
	for _, env := range bus.sent {
		if env.Type == netsim.MsgRows {
			rows, err := types.DecodeRows(env.Payload)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, rows...)
		}
	}
	want := []types.Row{
		{types.Int64(101), types.Int32(1)},
		{types.Int64(104), types.Int32(4)},
		{types.Int64(106), types.Int32(6)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shipped %v, want %v", got, want)
	}
}

// TestRowModeMatchesBatchMode runs the repartition family in both execution
// modes and requires identical results and identical counter snapshots —
// the Config.RowAtATime baseline is the seed's semantics, so the vectorized
// path must not move a single counter.
func TestRowModeMatchesBatchMode(t *testing.T) {
	run := func(rowMode bool) (map[string]map[string]int64, []*Result) {
		f := buildFixture(t, netsim.NewChanBus(256), 3, 5, 2000, 6000, format.HWCName)
		defer f.eng.Close()
		f.eng.cfg.RowAtATime = rowMode
		q := exampleQuery(t, f, 300, 400)
		snaps := map[string]map[string]int64{}
		var results []*Result
		for _, alg := range []Algorithm{Repartition, RepartitionBloom, Zigzag} {
			f.eng.Recorder().Reset()
			res, err := f.eng.Run(q, alg)
			if err != nil {
				t.Fatalf("rowMode=%v %v: %v", rowMode, alg, err)
			}
			snaps[alg.String()] = res.Metrics
			results = append(results, res)
		}
		return snaps, results
	}
	batchSnaps, batchRes := run(false)
	rowSnaps, rowRes := run(true)
	if !reflect.DeepEqual(batchSnaps, rowSnaps) {
		for alg, rs := range rowSnaps {
			for k, v := range rs {
				if batchSnaps[alg][k] != v {
					t.Errorf("%s %s: batch=%d row=%d", alg, k, batchSnaps[alg][k], v)
				}
			}
		}
		t.Fatal("counter snapshots differ between execution modes")
	}
	for i := range batchRes {
		if !reflect.DeepEqual(batchRes[i].Rows, rowRes[i].Rows) {
			t.Fatalf("result rows differ for %v", batchRes[i].Algorithm)
		}
	}
}
