package core

import (
	"context"

	"hybridwh/internal/batch"
	"hybridwh/internal/bloom"
	"hybridwh/internal/cluster"
	"hybridwh/internal/edw"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/par"
	"hybridwh/internal/plan"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// runDBSide executes the DB-side join (Figure 1): the HDFS side applies
// local predicates, projection and (optionally) BF_DB, then ships the
// filtered table in parallel into the database — each JEN worker streams to
// the DB worker owning its group (Figure 5). The database optimizer picks
// the final join strategy (broadcast either side or repartition both), which
// may reshuffle the ingested HDFS rows again because the database's
// partitioning function is opaque to JEN (Section 4.3).
func (e *Engine) runDBSide(ctx context.Context, qs string, q *plan.JoinQuery, useBF bool) (*Result, error) {
	n, m := e.jen.Workers(), e.db.Workers()
	tbl, err := e.db.Table(q.DBTable)
	if err != nil {
		return nil, err
	}
	scanPlan, err := e.jen.PlanScan(q.HDFSTable)
	if err != nil {
		return nil, err
	}
	need := append(append([]int(nil), q.DBProj...), colSet(q.DBPred)...)
	accessPlan := e.db.PlanAccess(tbl, q.DBPred, need)

	if useBF {
		bfdb, err := e.db.BuildBloom(tbl, q.DBPred, q.DBJoinColBase, e.cfg.BloomBits, e.cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		if err := e.sendBloom(dbName(0), qs+"bfdb", bfdb, e.jenNames()); err != nil {
			return nil, err
		}
	}

	// JEN worker → DB worker grouping (Figure 5). With n ≥ m, the n JEN
	// workers divide into m groups; otherwise JEN worker j feeds DB worker j.
	jenToDB := make([]int, n)
	groupSize := make([]int, m)
	if n >= m {
		for i, group := range cluster.Groups(n, m) {
			for _, j := range group {
				jenToDB[j] = i
				groupSize[i]++
			}
		}
	} else {
		for j := 0; j < n; j++ {
			jenToDB[j] = j
			groupSize[j]++
		}
	}

	// The optimizer's strategy choice, from T' and L' cardinality estimates
	// (the paper passes a cardinality hint to the read_hdfs UDF).
	estT := int64(float64(tbl.Rows()) * accessPlan.EstSelectivity)
	estL := q.HDFSCardHint
	if estL == 0 {
		if cat, err := e.jen.Catalog().Lookup(q.HDFSTable); err == nil {
			estL = cat.Rows
		}
	}
	strategy := edw.ChooseJoinStrategy(estT, estL, m)

	g, ctx := par.WithContext(ctx)
	var resultRows []types.Row

	for w := 0; w < n; w++ {
		w := w
		g.Go(func() error { return e.jenIngestProgram(ctx, qs, q, scanPlan, w, jenToDB[w], useBF) })
	}
	for i := 0; i < m; i++ {
		i := i
		g.Go(func() error {
			rows, err := e.dbJoinProgram(ctx, qs, q, tbl, accessPlan, strategy, i, m, groupSize[i], nil)
			if i == 0 {
				resultRows = rows
			}
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &Result{Rows: resultRows, DBJoinStrategy: strategy}, nil
}

// jenIngestProgram is a JEN worker's role in the DB-side join: scan, filter,
// project, apply BF_DB, and stream the surviving batches to its DB worker.
func (e *Engine) jenIngestProgram(ctx context.Context, qs string, q *plan.JoinQuery, scanPlan *jen.ScanPlan, w, dbWorker int, useBF bool) error {
	me := jenName(w)
	var runErr error
	var bfdb *bloom.Filter
	if useBF {
		f, err := e.recvBloom(ctx, me, qs+"bfdb", 1)
		firstErr(&runErr, err)
		bfdb = f
	}
	dest := dbName(dbWorker)
	b := e.newBatcher(ctx, me, qs+"ingest", []string{dest}, metrics.HDFSSentTuples, metrics.HDFSSentBytes, w)
	scanKey := q.HDFSWire[q.HDFSWireKey]
	if runErr == nil {
		err := e.jen.ScanFilterBatches(jen.ScanSpec{
			Plan: scanPlan, Worker: w,
			Proj: q.HDFSScanProj, Pred: q.HDFSPred, Pruner: q.Pruner(),
			DBFilter: wrapBloom(bfdb), BloomKeyIdx: scanKey,
			Threads: e.cfg.WorkerThreads,
			Mem:     e.budget(qs),
		}, func(sb *batch.Batch) error {
			return b.sendBatch(dest, sb, q.HDFSWire)
		})
		firstErr(&runErr, err)
	}
	firstErr(&runErr, b.CloseWith(runErr))
	return runErr
}

// dbJoinProgram is a DB worker's role in the DB-side join. It always
// completes the wire protocol (EOS to every peer) before reporting errors.
// bfh, when set, further prunes the local T' (the dismissed DB-side zigzag
// variant); the plain DB-side joins pass nil.
func (e *Engine) dbJoinProgram(ctx context.Context, qs string, q *plan.JoinQuery, tbl *edw.Table, ap edw.AccessPlan, strategy edw.JoinStrategy, i, m, ingestSenders int, bfh *bloom.Filter) ([]types.Row, error) {
	me := dbName(i)
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx

	// Local T' first. It is materialized: depending on the strategy it is
	// inserted locally, reshuffled or broadcast, and the zigzag variant
	// prunes it with BF_H before any of that.
	tw, err := e.db.FilterProject(tbl, i, ap, q.DBProj)
	pr.fail(err)
	if err == nil && bfh != nil {
		tw, _ = e.db.ApplyBloom(tw, q.DBWireKey, bfh)
	}

	// Background receivers registered before anything is sent. Their errors
	// abort the program context (bgFail), so a failed receiver also unblocks
	// its sibling and the ingest loop below.
	bud := e.budget(qs)
	ht := relop.NewHashTable(q.DBWireKey)
	var lbatches []*batch.Batch
	var probeTuples int64
	var bg par.Group

	switch strategy {
	case edw.RepartitionBoth, edw.BroadcastDB:
		// The hash table holds T' rows arriving on the treshuf stream.
		bg.Go(func() error {
			err := e.recvBatches(ctx, me, qs+"treshuf", m, func(b *batch.Batch) error { return ht.InsertBatch(b) })
			pr.bgFail(err)
			return err
		})
	case edw.BroadcastIngested:
		// The hash table is the local T' partition; no T reshuffle.
		for _, r := range tw {
			if err := ht.Insert(r); err != nil {
				pr.fail(err)
				break
			}
		}
	}
	switch strategy {
	case edw.RepartitionBoth, edw.BroadcastIngested:
		// HDFS batches arrive reshuffled/broadcast on lreshuf.
		bg.Go(func() error {
			bs, tuples, err := e.collectBatches(ctx, me, qs+"lreshuf", m)
			lbatches, probeTuples = bs, tuples
			pr.bgFail(err)
			return err
		})
	}

	// Ship T' per strategy.
	switch strategy {
	case edw.RepartitionBoth:
		tb := e.newBatcher(ctx, me, qs+"treshuf", e.dbNames(), metrics.DBReshuffleTuples, metrics.DBReshuffleBytes, i)
		if runErr == nil {
			pr.fail(tb.scatterRows(tw, q.DBWireKey, func(key int64) string {
				return dbName(cluster.PartitionFor(key, m))
			}))
		}
		pr.fail(tb.CloseWith(runErr))
	case edw.BroadcastDB:
		tb := e.newBatcher(ctx, me, qs+"treshuf", e.dbNames(), metrics.DBReshuffleTuples, metrics.DBReshuffleBytes, i)
		if runErr == nil {
			pr.fail(tb.broadcastRows(tw))
		}
		pr.fail(tb.CloseWith(runErr))
	}

	// Ingest the HDFS stream from this worker's JEN group, forwarding per
	// strategy; pipelined — batches are forwarded as they arrive.
	switch strategy {
	case edw.RepartitionBoth:
		lb := e.newBatcher(ctx, me, qs+"lreshuf", e.dbNames(), metrics.DBIngestTuples, metrics.DBIngestBytes, i)
		err := e.recvBatches(ctx, me, qs+"ingest", ingestSenders, func(b *batch.Batch) error {
			return lb.scatterBatch(b, nil, q.HDFSWireKey, func(key int64) string {
				return dbName(cluster.PartitionFor(key, m))
			})
		})
		pr.fail(err)
		pr.fail(lb.CloseWith(runErr))
	case edw.BroadcastIngested:
		// Each ingested row is counted once even though it is replicated
		// to every worker (the bus and byte counter see every copy).
		lb := e.newBatcher(ctx, me, qs+"lreshuf", e.dbNames(), "", metrics.DBIngestBytes, i)
		var ingested int64
		err := e.recvBatches(ctx, me, qs+"ingest", ingestSenders, func(b *batch.Batch) error {
			ingested += int64(b.Len())
			return lb.broadcastBatch(b, nil)
		})
		pr.fail(err)
		pr.fail(lb.CloseWith(runErr))
		e.rec.AddAt(metrics.DBIngestTuples, i, ingested)
	case edw.BroadcastDB:
		// No forwarding: buffer the ingested batches locally.
		bs, tuples, err := e.collectBatches(ctx, me, qs+"ingest", ingestSenders)
		lbatches, probeTuples = bs, tuples
		pr.fail(err)
		e.rec.AddAt(metrics.DBIngestTuples, i, tuples)
	}

	pr.fail(bg.Wait())
	e.rec.AddAt(metrics.JoinBuildTuples, i, ht.Len())
	e.rec.AddAt(metrics.JoinProbeTuples, i, probeTuples)

	charged := chargeJoinBuild(bud, ht.Len(), len(q.DBProj)) + chargeBatches(bud, lbatches)
	defer bud.Release(charged)

	// Probe: HDFS batches against the T' hash table. Combined layout is
	// HDFS wire ++ DB wire; the post-join predicate and partial aggregation
	// run batch-at-a-time through the combiner.
	agg := relop.NewHashAgg(q.GroupBy, q.Aggs)
	agg.SetBudget(bud)
	defer func() { bud.Release(agg.MemBytes()) }()
	if runErr == nil {
		cmb := &combiner{e: e, q: q, agg: agg}
		var scratch types.Row
		for _, pb := range lbatches {
			keys := pb.Col(q.HDFSWireKey)
			err := pb.Each(func(r int) error {
				bucket := ht.Probe(keys[r].Int())
				if len(bucket) == 0 {
					return nil
				}
				scratch = pb.RowAt(r, scratch)
				for _, dbr := range bucket {
					if err := cmb.add(scratch, dbr); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				pr.fail(err)
				break
			}
		}
		pr.fail(cmb.flush())
		e.rec.Add(metrics.JoinOutputTuples, cmb.output)
	}

	// Partial aggregates converge on db/0, which produces the result.
	pb := e.newBatcher(ctx, me, qs+"partial", []string{dbName(0)}, "", "", i)
	if runErr == nil {
		pr.fail(pb.sendRows(dbName(0), agg.PartialRows()))
	}
	pr.fail(pb.CloseWith(runErr))

	if i != 0 {
		return nil, runErr
	}
	final := relop.NewHashAgg(q.GroupBy, q.Aggs)
	err = e.recvRows(ctx, me, qs+"partial", m, func(r types.Row) error {
		return final.MergePartial(r)
	})
	pr.fail(err)
	rows := final.FinalRows()
	e.rec.Add(metrics.AggGroups, int64(len(rows)))
	return rows, runErr
}
