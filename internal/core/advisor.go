package core

import "fmt"

// AdviceStats are the planning statistics the advisor consults: table sizes
// and estimated local-predicate selectivities (from histograms on the DB
// side and the catalog/cardinality hint on the HDFS side).
type AdviceStats struct {
	TRows  int64
	LRows  int64
	SigmaT float64 // estimated σ_T
	SigmaL float64 // estimated σ_L
	// AvgTWireBytes estimates the shipped width of a T' row (default 16).
	AvgTWireBytes int
	// HotKeyShare is the estimated fraction of L' held by its single most
	// frequent join key (0 = unknown/uniform). With a plain hash
	// repartition, that whole fraction lands on one worker.
	HotKeyShare float64
	// SkewHandled reports that the engine's skew-resilient shuffle is
	// enabled (Config.SkewThreshold > 0), which neutralizes HotKeyShare for
	// the shuffle-based algorithms.
	SkewHandled bool
	// JENWorkers is the HDFS-side worker count (0 = unknown; skew reasoning
	// is skipped).
	JENWorkers int
}

// Advice is the advisor's decision with its rationale.
type Advice struct {
	Algorithm Algorithm
	Reason    string
}

// Thresholds codifying Section 5.5's empirical findings.
const (
	// broadcastMaxBytes: "broadcast join is only preferable when the
	// predicate on T is highly selective, e.g. σT ≤ 0.001 (T' ≤ 25MB)".
	broadcastMaxBytes = 25 << 20
	// dbSideMaxSigmaL: "DB-side join performs better only when the
	// predicate selectivity on the HDFS table is very selective
	// (σL ≤ 0.01)".
	dbSideMaxSigmaL = 0.01
	// skewBroadcastShare: when one join key holds more than this share of
	// L' and the skew-resilient shuffle is off, a hash repartition
	// concentrates that share on a single worker — the straggler erases the
	// parallel speedup, so broadcasting T' (no L shuffle at all) wins even
	// for a T' well past the uniform-case threshold.
	skewBroadcastShare = 0.2
	// skewBroadcastMaxBytes caps how large a T' the skew escape hatch will
	// still broadcast (replication to every worker is not free either).
	skewBroadcastMaxBytes = 8 * broadcastMaxBytes
)

// Advise picks a join algorithm for a hybrid query, implementing the
// paper's discussion: broadcast when T' is tiny, the DB-side join (with a
// Bloom filter) when the HDFS predicate is very selective, and otherwise
// the zigzag join — "the most reliable join method that works the best most
// of the time". Scale converts row estimates to paper-scale bytes for the
// broadcast threshold; pass 1 when the inputs are full-size.
func Advise(s AdviceStats, scale float64) Advice {
	if scale <= 0 {
		scale = 1
	}
	width := s.AvgTWireBytes
	if width <= 0 {
		width = 16
	}
	tPrimeBytes := float64(s.TRows) * scale * s.SigmaT * float64(width)
	// Guard on TRows, not tPrimeBytes: a fully-filtered T' (σ_T estimated 0)
	// is the *cheapest* possible broadcast, not a reason to fall through to
	// zigzag. tPrimeBytes == 0 with TRows > 0 means the estimate says nothing
	// survives — broadcast the (near-)empty T' and skip the shuffle entirely.
	// Only an unknown table (TRows == 0, no statistics) should skip this rule.
	if s.TRows > 0 && tPrimeBytes <= broadcastMaxBytes {
		return Advice{
			Algorithm: Broadcast,
			Reason: fmt.Sprintf("T' ≈ %.1f MB fits on every worker; broadcasting avoids any HDFS shuffle",
				tPrimeBytes/(1<<20)),
		}
	}
	if s.SigmaL > 0 && s.SigmaL <= dbSideMaxSigmaL {
		return Advice{
			Algorithm: DBSideBloom,
			Reason: fmt.Sprintf("σ_L ≈ %.4f is highly selective; shipping the small L' into the database wins",
				s.SigmaL),
		}
	}
	// The shuffle-based algorithms (repartition, zigzag) assume the agreed
	// hash spreads L' evenly. A dominant join key breaks that: the hot key's
	// home worker receives HotKeyShare of the shuffle and everything waits
	// for it. If the engine's hybrid skew shuffle is off, fall back to
	// broadcast — T' replication costs the same on every worker, so the hot
	// key probes in parallel wherever its L rows already sit.
	if !s.SkewHandled && s.JENWorkers > 1 && s.HotKeyShare > skewBroadcastShare &&
		s.HotKeyShare > 2/float64(s.JENWorkers) &&
		tPrimeBytes > 0 && tPrimeBytes <= skewBroadcastMaxBytes {
		return Advice{
			Algorithm: Broadcast,
			Reason: fmt.Sprintf("hottest join key holds ≈%.0f%% of L' and the skew-resilient shuffle is off: a hash repartition would bottleneck on one worker, so broadcast T' (≈%.1f MB) instead",
				s.HotKeyShare*100, tPrimeBytes/(1<<20)),
		}
	}
	return Advice{
		Algorithm: Zigzag,
		Reason:    "no highly selective side: zigzag exploits join-key predicates in both directions and is the robust choice",
	}
}
