package core

import "fmt"

// AdviceStats are the planning statistics the advisor consults: table sizes
// and estimated local-predicate selectivities (from histograms on the DB
// side and the catalog/cardinality hint on the HDFS side).
type AdviceStats struct {
	TRows  int64
	LRows  int64
	SigmaT float64 // estimated σ_T
	SigmaL float64 // estimated σ_L
	// AvgTWireBytes estimates the shipped width of a T' row (default 16).
	AvgTWireBytes int
}

// Advice is the advisor's decision with its rationale.
type Advice struct {
	Algorithm Algorithm
	Reason    string
}

// Thresholds codifying Section 5.5's empirical findings.
const (
	// broadcastMaxBytes: "broadcast join is only preferable when the
	// predicate on T is highly selective, e.g. σT ≤ 0.001 (T' ≤ 25MB)".
	broadcastMaxBytes = 25 << 20
	// dbSideMaxSigmaL: "DB-side join performs better only when the
	// predicate selectivity on the HDFS table is very selective
	// (σL ≤ 0.01)".
	dbSideMaxSigmaL = 0.01
)

// Advise picks a join algorithm for a hybrid query, implementing the
// paper's discussion: broadcast when T' is tiny, the DB-side join (with a
// Bloom filter) when the HDFS predicate is very selective, and otherwise
// the zigzag join — "the most reliable join method that works the best most
// of the time". Scale converts row estimates to paper-scale bytes for the
// broadcast threshold; pass 1 when the inputs are full-size.
func Advise(s AdviceStats, scale float64) Advice {
	if scale <= 0 {
		scale = 1
	}
	width := s.AvgTWireBytes
	if width <= 0 {
		width = 16
	}
	tPrimeBytes := float64(s.TRows) * scale * s.SigmaT * float64(width)
	if tPrimeBytes > 0 && tPrimeBytes <= broadcastMaxBytes {
		return Advice{
			Algorithm: Broadcast,
			Reason: fmt.Sprintf("T' ≈ %.1f MB fits on every worker; broadcasting avoids any HDFS shuffle",
				tPrimeBytes/(1<<20)),
		}
	}
	if s.SigmaL > 0 && s.SigmaL <= dbSideMaxSigmaL {
		return Advice{
			Algorithm: DBSideBloom,
			Reason: fmt.Sprintf("σ_L ≈ %.4f is highly selective; shipping the small L' into the database wins",
				s.SigmaL),
		}
	}
	return Advice{
		Algorithm: Zigzag,
		Reason:    "no highly selective side: zigzag exploits join-key predicates in both directions and is the robust choice",
	}
}
