package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"hybridwh/internal/batch"
	"hybridwh/internal/bloom"
	"hybridwh/internal/cluster"
	"hybridwh/internal/costmodel"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/par"
	"hybridwh/internal/plan"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// This file is the N-way star/snowflake join executor: the analyzer's
// plan.MultiQuery runs as a pipeline of two-table join stages on the JEN
// workers. Each dimension component is materialized database-side first
// (snowflake sub-dimensions pre-joined there, where the tables are
// co-located), its Bloom filter is built from the rows that actually
// survive, and every filter is cascaded into the single fact scan — so the
// fact table is reduced by ALL dimensions before the first byte is
// shuffled, the multi-join generalization of the paper's zigzag idea.

// EdgeSummary reports one executed join edge of a multi-join query.
type EdgeSummary struct {
	Dim       string
	Algorithm plan.EdgeAlg
	Bloom     bool
	// Switched reports the adaptive layer replaced this edge's committed
	// repartition with a broadcast mid-query; SwitchReason carries the
	// observed statistics and re-costs that justified it.
	Switched     bool
	SwitchReason string
}

// MultiResult is a completed multi-join query, returned at the database
// side like Result.
type MultiResult struct {
	Rows   []types.Row
	Schema types.Schema
	Edges  []EdgeSummary
	// Metrics is a snapshot of the counters accumulated during the run.
	Metrics map[string]int64
}

// RunMulti executes an analyzed multi-join query. The fact table streams
// from HDFS; every dimension edge joins with its independently chosen
// algorithm. Row-at-a-time mode does not apply to the N-way executor — the
// pipeline always runs batch-at-a-time.
func (e *Engine) RunMulti(q *plan.MultiQuery) (*MultiResult, error) {
	return e.RunMultiCtx(context.Background(), q)
}

// RunMultiCtx is RunMulti under a caller-supplied context, with RunCtx's
// cancellation semantics.
func (e *Engine) RunMultiCtx(ctx context.Context, q *plan.MultiQuery) (*MultiResult, error) {
	return e.RunMultiOpts(ctx, q, RunOpts{})
}

// RunMultiOpts is RunMultiCtx with per-run options; RunOpts{} reproduces
// RunMultiCtx exactly.
func (e *Engine) RunMultiOpts(ctx context.Context, q *plan.MultiQuery, opts RunOpts) (*MultiResult, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: query not started: %w", err)
	}
	qs := fmt.Sprintf("q%d/", e.qid.Add(1))
	if opts.Budget != nil {
		e.budMu.Lock()
		e.budgets[qs] = opts.Budget
		e.budMu.Unlock()
		defer func() {
			e.budMu.Lock()
			delete(e.budgets, qs)
			e.budMu.Unlock()
		}()
	}
	res, err := e.runMulti(ctx, qs, q)
	if err != nil {
		return nil, fmt.Errorf("core: multi-join query aborted: %w", err)
	}
	res.Schema = q.OutputSchema
	res.Metrics = e.rec.Snapshot()
	return res, nil
}

// dimMat is one materialized dimension component: the DB workers'
// filter/project (and snowflake pre-join) output, partitioned as stored.
type dimMat struct {
	parts [][]types.Row // per DB worker, component wire rows
}

// multiAdaptState collects the per-edge switch decisions for the facade.
type multiAdaptState struct {
	mu      sync.Mutex
	reasons map[int]string // guarded by mu; edge index -> reason
}

func (s *multiAdaptState) record(edge int, reason string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.reasons == nil {
		s.reasons = map[int]string{}
	}
	s.reasons[edge] = reason
	s.mu.Unlock()
}

func (s *multiAdaptState) get(edge int) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.reasons[edge]
	return r, ok
}

// mstream names a per-edge stream: qs + "dim0", qs + "bf2", ...
func mstream(qs, kind string, edge int) string {
	return fmt.Sprintf("%s%s%d", qs, kind, edge)
}

func (e *Engine) runMulti(ctx context.Context, qs string, q *plan.MultiQuery) (*MultiResult, error) {
	n, m := e.jen.Workers(), e.db.Workers()
	scanPlan, err := e.jen.PlanScan(q.FactTable)
	if err != nil {
		return nil, err
	}

	// Phase A (blocking, like the two-table BF_DB build): materialize every
	// dimension component database-side. Snowflake sub-dimensions join
	// here, where both tables live; the Bloom filter of each component is
	// built from the surviving rows — so a selective sub-dimension
	// predicate tightens the fact-scan cascade too.
	dims := make([]*dimMat, len(q.Edges))
	bud := e.budget(qs)
	var charged int64
	defer func() { bud.Release(charged) }()
	for ei := range q.Edges {
		ed := &q.Edges[ei]
		dm, err := e.materializeDim(ed)
		if err != nil {
			return nil, err
		}
		dims[ei] = dm
		for _, part := range dm.parts {
			charged += chargeRows(bud, part)
		}
		if ed.UseBloom {
			bf := bloom.New(e.cfg.BloomBits, e.cfg.BloomHashes)
			for _, part := range dm.parts {
				for _, r := range part {
					bf.AddHash(types.BloomHashKey(r[ed.DimKeyWire].Int()))
				}
			}
			e.rec.Add(metrics.BloomBuildKeys, int64(bf.EstimateCardinality()))
			if err := e.sendBloom(dbName(0), mstream(qs, "bf", ei), bf, e.jenNames()); err != nil {
				return nil, err
			}
		}
	}

	// Adaptive gating: repartition edges past the first re-cost against a
	// broadcast once the true intermediate size is observed (the committed
	// plan sized them from estimates that compound error edge over edge).
	gated := make([]bool, len(q.Edges))
	var st *multiAdaptState
	if e.cfg.AdaptiveSwitch {
		st = &multiAdaptState{}
		for ei := range q.Edges {
			gated[ei] = ei > 0 && q.Edges[ei].Algorithm == plan.EdgeRepartition
		}
	}

	g, ctx := par.WithContext(ctx)
	var resultRows []types.Row
	g.Go(func() error {
		rows, err := e.collectRows(ctx, dbName(0), qs+"final", 1)
		resultRows = rows
		return err
	})
	for i := 0; i < m; i++ {
		i := i
		g.Go(func() error { return e.multiDBProgram(ctx, qs, q, dims, i, n, gated) })
	}
	for w := 0; w < n; w++ {
		w := w
		g.Go(func() error { return e.multiJENProgram(ctx, qs, q, scanPlan, w, n, m, gated, st) })
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}

	res := &MultiResult{Rows: resultRows}
	for ei, ed := range q.Edges {
		s := EdgeSummary{Dim: ed.Dim.Table, Algorithm: ed.Algorithm, Bloom: ed.UseBloom}
		if reason, ok := st.get(ei); ok {
			s.Switched = true
			s.Algorithm = plan.EdgeBroadcast
			s.SwitchReason = reason
		}
		res.Edges = append(res.Edges, s)
	}
	return res, nil
}

// materializeDim filters and projects one dimension component on every DB
// worker, pre-joining a snowflake sub-dimension DB-side when the plan has
// one. The output rows follow the component's wire layout: parent
// projection, then (for snowflake components) the sub-dimension's.
func (e *Engine) materializeDim(ed *plan.EdgeExec) (*dimMat, error) {
	tbl, err := e.db.Table(ed.Dim.Table)
	if err != nil {
		return nil, err
	}
	need := append(append([]int(nil), ed.Dim.Proj...), colSet(ed.Dim.Pred)...)
	ap := e.db.PlanAccess(tbl, ed.Dim.Pred, need)

	// Snowflake: materialize the (small) sub-dimension fully and hash it on
	// its join key so every parent partition can probe it locally.
	var subHT *relop.HashTable
	if sub := ed.Dim.Sub; sub != nil {
		subTbl, err := e.db.Table(sub.Table)
		if err != nil {
			return nil, err
		}
		subNeed := append(append([]int(nil), sub.Proj...), colSet(sub.Pred)...)
		subAp := e.db.PlanAccess(subTbl, sub.Pred, subNeed)
		subHT = relop.NewHashTable(0) // sub wire leads with its join key
		subParts := make([][]types.Row, e.db.Workers())
		err = par.ForEach(e.db.Workers(), func(w int) error {
			rows, err := e.db.FilterProject(subTbl, w, subAp, sub.Proj)
			subParts[w] = rows
			return err
		})
		if err != nil {
			return nil, err
		}
		for _, rows := range subParts {
			for _, r := range rows {
				if err := subHT.Insert(r); err != nil {
					return nil, err
				}
			}
		}
		subHT.Build()
	}

	dm := &dimMat{parts: make([][]types.Row, e.db.Workers())}
	var dimJoined int64
	var mu sync.Mutex
	err = par.ForEach(e.db.Workers(), func(w int) error {
		rows, err := e.db.FilterProject(tbl, w, ap, ed.Dim.Proj)
		if err != nil {
			return err
		}
		if subHT != nil {
			fk := ed.Dim.Sub.ParentFKWire
			joined := make([]types.Row, 0, len(rows))
			for _, r := range rows {
				for _, sr := range subHT.Probe(r[fk].Int()) {
					joined = append(joined, r.Concat(sr))
				}
			}
			rows = joined
			mu.Lock()
			dimJoined += int64(len(joined))
			mu.Unlock()
		}
		dm.parts[w] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	if subHT != nil {
		e.rec.Add(metrics.DBDimJoinTuples, dimJoined)
	}
	return dm, nil
}

// multiDBProgram is one DB worker's side of the multi-join: ship each
// materialized dimension partition to the JEN workers, edge by edge —
// broadcast to all, or scattered by the agreed hash function. Gated edges
// wait for the designated JEN worker's keep-vs-broadcast decision first.
func (e *Engine) multiDBProgram(ctx context.Context, qs string, q *plan.MultiQuery, dims []*dimMat, i, n int, gated []bool) error {
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx
	destOf := func(key int64) string { return jenName(cluster.PartitionFor(key, n)) }
	for ei := range q.Edges {
		ed := &q.Edges[ei]
		b := e.newBatcher(ctx, dbName(i), mstream(qs, "dim", ei), e.jenNames(), metrics.DBSentTuples, metrics.DBSentBytes, i)
		alg := ed.Algorithm
		if gated[ei] {
			d, err := e.recvCtl(ctx, dbName(i), mstream(qs, "dec", ei))
			pr.fail(err)
			if err == nil && d == 1 {
				alg = plan.EdgeBroadcast
			}
		}
		if runErr == nil {
			rows := dims[ei].parts[i]
			if alg == plan.EdgeBroadcast {
				pr.fail(b.broadcastRows(rows))
			} else {
				pr.fail(b.scatterRows(rows, ed.DimKeyWire, destOf))
			}
		}
		// Closed even when failing so every JEN receiver learns the fate of
		// this worker's stream instead of waiting on it.
		pr.fail(b.CloseWith(runErr))
	}
	return runErr
}

// multiJENProgram is one JEN worker's side of the multi-join: receive the
// cascaded Bloom filters, scan the fact table once with every filter
// applied, then run the join edges as pipeline stages — repartition stages
// reshuffle the intermediate result by the next edge's key, broadcast
// stages probe the full dimension locally — and finish with the shared
// aggregation fan-in.
func (e *Engine) multiJENProgram(ctx context.Context, qs string, q *plan.MultiQuery, scanPlan *jen.ScanPlan, w, n, m int, gated []bool, st *multiAdaptState) error {
	me := jenName(w)
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx
	bud := e.budget(qs)
	var charged int64
	defer func() { bud.Release(charged) }()
	destOf := func(key int64) string { return jenName(cluster.PartitionFor(key, n)) }
	desig := e.jen.DesignatedWorker()

	// Blocking: the cascaded dimension Bloom filters, in edge order (the
	// multi-join counterpart of the two-table BF_DB wait).
	var cascade []jen.CascadeFilter
	for ei := range q.Edges {
		if !q.Edges[ei].UseBloom {
			continue
		}
		bf, err := e.recvBloom(ctx, me, mstream(qs, "bf", ei), 1)
		pr.fail(err)
		if bf != nil {
			cascade = append(cascade, jen.CascadeFilter{
				Filter: jen.BloomKeyFilter{F: bf},
				KeyIdx: q.FactWire[q.Edges[ei].FactKeyCol],
			})
		}
	}

	spec := jen.ScanSpec{
		Plan: scanPlan, Worker: w,
		Proj: q.FactScanProj, Pred: q.FactPred, Pruner: q.Pruner(),
		Cascade: cascade,
		Threads: e.cfg.WorkerThreads,
		Mem:     bud,
	}

	// Stage 0: the fact scan feeds the first edge directly — scattered by
	// its key for a repartition edge, kept local for a broadcast edge.
	var cur []types.Row
	first := &q.Edges[0]
	if first.Algorithm == plan.EdgeRepartition {
		b := e.newBatcher(ctx, me, mstream(qs, "shuffle", 0), e.jenNames(), metrics.JENShuffleTuples, metrics.JENShuffleBytes, w)
		scanKey := q.FactWire[first.FactKeyCol]
		if runErr == nil {
			pr.fail(e.jen.ScanFilterBatches(spec, func(sb *batch.Batch) error {
				return b.scatterBatch(sb, q.FactWire, scanKey, destOf)
			}))
		}
		pr.fail(b.CloseWith(runErr))
		rows, err := e.collectRows(ctx, me, mstream(qs, "shuffle", 0), n)
		pr.fail(err)
		e.rec.AddAt(metrics.JENRecvTuples, w, int64(len(rows)))
		cur = rows
	} else {
		var mu sync.Mutex // morsel workers yield concurrently
		if runErr == nil {
			pr.fail(e.jen.ScanFilterBatches(spec, func(sb *batch.Batch) error {
				wb := batch.New(len(q.FactWire), sb.Len())
				perr := sb.Each(func(i int) error {
					wb.AppendFrom(sb, i, q.FactWire)
					return nil
				})
				rows := wb.Rows()
				mu.Lock()
				cur = append(cur, rows...)
				mu.Unlock()
				return perr
			}))
		}
	}
	charged += chargeRows(bud, cur)

	// Join stages. Width tracks the combined layout for the adaptive
	// re-cost's bytes-per-row estimate.
	width := len(q.FactWire)
	for ei := range q.Edges {
		ed := &q.Edges[ei]
		alg := ed.Algorithm

		if gated[ei] {
			// Keep-vs-broadcast handshake: every worker contributes its
			// observed intermediate size — unconditionally, even when
			// failing, so the designated fan-in always completes — and the
			// decision reaches the JEN and DB workers alike.
			pr.fail(e.sendCtl(me, mstream(qs, "obs", ei), int64(len(cur)), []string{jenName(desig)}))
			if w == desig {
				total, err := e.recvCtlSum(ctx, me, mstream(qs, "obs", ei), n)
				pr.fail(err)
				var dec int64
				if err == nil {
					var reason string
					dec, reason = e.decideEdgeSwitch(ed, total, int64(16*width), n, m)
					if dec == 1 {
						st.record(ei, reason)
					}
				}
				pr.fail(e.sendCtl(me, mstream(qs, "dec", ei), dec, append(e.jenNames(), e.dbNames()...)))
			}
			d, err := e.recvCtl(ctx, me, mstream(qs, "dec", ei))
			pr.fail(err)
			if err == nil && d == 1 {
				alg = plan.EdgeBroadcast
			}
		}

		// Reshuffle the intermediate result by this edge's key (the first
		// edge was already routed by the scan).
		if ei > 0 && alg == plan.EdgeRepartition {
			b := e.newBatcher(ctx, me, mstream(qs, "shuffle", ei), e.jenNames(), metrics.JENShuffleTuples, metrics.JENShuffleBytes, w)
			if runErr == nil {
				pr.fail(b.scatterRows(cur, ed.FactKeyCol, destOf))
			}
			pr.fail(b.CloseWith(runErr))
			rows, err := e.collectRows(ctx, me, mstream(qs, "shuffle", ei), n)
			pr.fail(err)
			e.rec.AddAt(metrics.JENRecvTuples, w, int64(len(rows)))
			cur = rows
			charged += chargeRows(bud, cur)
		}

		// Receive this edge's dimension — the hash-local share under
		// repartition, the full dimension under broadcast — and probe.
		dimRows, err := e.collectRows(ctx, me, mstream(qs, "dim", ei), m)
		pr.fail(err)
		if runErr == nil {
			ht := relop.NewHashTable(ed.DimKeyWire)
			for _, r := range dimRows {
				if err := ht.Insert(r); err != nil {
					pr.fail(err)
					break
				}
			}
			ht.Build()
			charged += chargeJoinBuild(bud, int64(len(dimRows)), ed.DimWireSchema.Len())
			e.rec.AddAt(metrics.JoinBuildTuples, w, int64(len(dimRows)))
			e.rec.AddAt(metrics.JoinProbeTuples, w, int64(len(cur)))
			if runErr == nil {
				next := make([]types.Row, 0, len(cur))
				for _, r := range cur {
					for _, dr := range ht.Probe(r[ed.FactKeyCol].Int()) {
						next = append(next, r.Concat(dr))
					}
				}
				cur = next
				charged += chargeRows(bud, cur)
			}
		}
		width += ed.DimWireSchema.Len()
	}

	// Post-join filter and partial aggregation, then the shared fan-in.
	agg := relop.NewHashAgg(q.GroupBy, q.Aggs)
	agg.SetBudget(bud)
	defer func() { bud.Release(agg.MemBytes()) }()
	if runErr == nil {
		var output int64
		for _, r := range cur {
			ok := true
			if q.PostJoin != nil {
				v, err := q.PostJoin.Eval(r)
				if err != nil {
					pr.fail(err)
					break
				}
				ok = v.Truth()
			}
			if !ok {
				continue
			}
			output++
			if err := agg.Add(r); err != nil {
				pr.fail(err)
				break
			}
		}
		e.rec.Add(metrics.JoinOutputTuples, output)
	}
	return e.finishAggregation(ctx, qs, q.GroupBy, q.Aggs, agg, w, n, runErr)
}

// decideEdgeSwitch re-costs a gated repartition edge against a broadcast
// using the observed intermediate cardinality, with the same cost model and
// hysteresis as the two-table adaptive layer. Returns 1 to switch.
func (e *Engine) decideEdgeSwitch(ed *plan.EdgeExec, interRows, interRowBytes int64, n, m int) (int64, string) {
	stats := costmodel.PlanStats{
		TPrimeRows: ed.EstDimRows, TPrimeBytes: ed.EstDimBytes,
		LPrimeRows: interRows, LPrimeBytes: interRows * interRowBytes,
		JENWorkers: n, DBWorkers: m,
	}
	mod := costmodel.New(costmodel.Rates{})
	cur := mod.ShuffleJoinCost(stats, false)
	bc := mod.BroadcastJoinCost(stats)
	e.rec.Add(metrics.AdaptDecisions, 1)
	if !costmodel.ShouldSwitch(cur, bc, e.cfg.AdaptMargin) {
		return 0, ""
	}
	e.rec.Add(metrics.AdaptSwitches, 1)
	return 1, fmt.Sprintf(
		"edge %s: observed intermediate ≈%d rows vs dim ≈%d rows: re-cost keep=%.3gs broadcast=%.3gs (margin %.0f%%) → broadcast",
		ed.Dim.Table, interRows, ed.EstDimRows, cur, bc, e.cfg.AdaptMargin*100)
}

// sendCtl ships one int64 control value — an observed cardinality or an
// agreed decision — on a MsgControl stream.
func (e *Engine) sendCtl(from, stream string, v int64, dests []string) error {
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], uint64(v))
	for _, dest := range dests {
		e.rec.Add(metrics.AdaptBytes, int64(len(payload)))
		if err := e.bus.Send(from, dest, netsim.Msg{Type: netsim.MsgControl, Stream: stream, Payload: payload[:]}); err != nil {
			return err
		}
	}
	return nil
}

// recvCtl blocks for one control value, with the standard abort semantics.
func (e *Engine) recvCtl(ctx context.Context, at, stream string) (int64, error) {
	return e.recvCtlParts(ctx, at, stream, 1)
}

// recvCtlSum receives `parts` control values and returns their sum — the
// observation fan-in at the designated worker.
func (e *Engine) recvCtlSum(ctx context.Context, at, stream string, parts int) (int64, error) {
	return e.recvCtlParts(ctx, at, stream, parts)
}

func (e *Engine) recvCtlParts(ctx context.Context, at, stream string, parts int) (int64, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return 0, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return 0, err
	}
	defer r.Unroute(netsim.MsgControl, stream)
	defer r.Unroute(netsim.MsgError, stream)
	var sum int64
	var consumeErr error
	for i := 0; i < parts; i++ {
		select {
		case env := <-ch:
			if consumeErr != nil {
				continue // already failed; keep draining the protocol
			}
			if len(env.Payload) != 8 {
				consumeErr = fmt.Errorf("core: %s control %s from %s: bad payload size %d", at, stream, env.From, len(env.Payload))
				continue
			}
			sum += int64(binary.BigEndian.Uint64(env.Payload))
		case env := <-abort:
			return sum, decodeAbort(at, stream, env)
		case <-ctx.Done():
			return sum, ctxAbort(ctx, at, stream)
		}
	}
	return sum, consumeErr
}
