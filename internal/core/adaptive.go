package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"hybridwh/internal/batch"
	"hybridwh/internal/costmodel"
	"hybridwh/internal/jen"
	"hybridwh/internal/mem"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/plan"
	"hybridwh/internal/relop"
	"hybridwh/internal/skew"
	"hybridwh/internal/types"
)

// Adaptive execution (Config.AdaptiveSwitch): the repartition-based joins
// fix an advisor misprediction at runtime instead of living with it. The
// advisor commits to a plan from histograms and bounded samples; those
// estimates are wrong exactly when the choice matters most. The adaptive
// layer turns the scan-time telemetry the skew path already collects
// (Misra-Gries sketches, batch counters, jen.Progress) into a feedback
// loop, piggybacking on the skew handshake's deferred-shuffle machinery:
//
//  1. Each JEN worker scans with plain-hash routing *deferred*: the first
//     K (Config.AdaptBatches) wire batches are buffered locally while a
//     sketch and live σ_L counters accumulate over them.
//  2. At K batches (or end of scan, whichever first) the worker sends an
//     observation snapshot — physical/surviving row counts plus its sketch
//     — to the designated JEN worker (MsgControl, stream "adapt.obs").
//     Each DB worker contributes its observed |T'| the same way, which it
//     knows exactly once its partition filter has run.
//  3. The designated worker merges all n+m snapshots, extrapolates σ_L,
//     |L'|, |T'| and the hot-key share, re-costs the committed shuffle
//     plan against broadcasting T' and against the hybrid skew
//     partitioner (costmodel.ShuffleJoinCost/BroadcastJoinCost), and — if
//     an alternative wins past the hysteresis margin
//     (costmodel.ShouldSwitch) — switches the plan, broadcasting the
//     decision to every JEN and DB worker (MsgControl, stream
//     "adapt.dec").
//  4. Workers apply the decision mid-flight: keep → flush the buffered
//     batches through the agreed hash and route the rest of the scan
//     live; hybrid → same, through a skew.Partitioner built from the
//     decision's hot set; broadcast → keep buffering, never shuffle, and
//     join locally against the full T' that the DB workers now broadcast
//     instead of scattering.
//
// Exactness: routing never starts before the decision, every worker
// applies the same decision, and the broadcast probe reproduces
// runBroadcast's combined layout bit for bit — so results are identical
// to the never-switch run whatever the decision. Abort safety piggybacks
// on the standard protocol: snapshots and decisions are sent even on
// failure paths (mirroring agreeHotSet), every receive selects on
// MsgError and the program context, and the designated worker always
// broadcasts a fallback keep decision when its fan-in fails so no peer
// blocks on a handshake that will never complete.
//
// When on, the adaptive layer subsumes the static skew path for these
// algorithms (skewOn() && !adaptiveOn() in the programs): plain hash
// routing is the committed default and the hybrid partitioner engages
// only by observed decision.

// adaptiveOn reports whether mid-query switching is active. Row mode keeps
// the seed's single-pass pipeline untouched, like the skew path.
func (e *Engine) adaptiveOn() bool { return e.cfg.AdaptiveSwitch && !e.cfg.RowAtATime }

// switchKind is the runtime strategy a decision selects.
type switchKind byte

const (
	keepPlan switchKind = iota
	switchBroadcast
	switchHybrid
)

// String names the runtime strategy (Result.SwitchedTo).
func (k switchKind) String() string {
	switch k {
	case keepPlan:
		return "keep"
	case switchBroadcast:
		return "broadcast"
	case switchHybrid:
		return "hybrid-shuffle"
	default:
		return fmt.Sprintf("switch(%d)", int(k))
	}
}

// obsSnapshot is one worker's contribution to the observed statistics:
// scanned/survived rows and the heavy-hitter sketch from a JEN worker's
// scan prefix, or the exact |T'| from a DB worker. Snapshots merge by
// field-wise sum (sketch merge is a pointwise counter sum), so the fan-in
// is order-independent.
type obsSnapshot struct {
	scanned  int64 // physical L rows pulled through the filter stage
	survived int64 // of those, rows surviving every filter
	tRows    int64 // T' rows (DB side)
	tBytes   int64 // T' wire bytes (DB side, estimated)
	sketch   *skew.Sketch
}

// merge folds o into s.
func (s *obsSnapshot) merge(o obsSnapshot) {
	s.scanned += o.scanned
	s.survived += o.survived
	s.tRows += o.tRows
	s.tBytes += o.tBytes
	s.sketch.Merge(o.sketch)
}

// marshal encodes the snapshot: four big-endian int64s, then the sketch.
func (s obsSnapshot) marshal() []byte {
	sk := s.sketch
	if sk == nil {
		sk = skew.NewSketch(1)
	}
	buf := make([]byte, 32)
	binary.BigEndian.PutUint64(buf[0:], uint64(s.scanned))
	binary.BigEndian.PutUint64(buf[8:], uint64(s.survived))
	binary.BigEndian.PutUint64(buf[16:], uint64(s.tRows))
	binary.BigEndian.PutUint64(buf[24:], uint64(s.tBytes))
	return append(buf, sk.Marshal()...)
}

func unmarshalObs(b []byte) (obsSnapshot, error) {
	if len(b) < 32 {
		return obsSnapshot{}, fmt.Errorf("core: truncated observation snapshot (%d bytes)", len(b))
	}
	sk, err := skew.UnmarshalSketch(b[32:])
	if err != nil {
		return obsSnapshot{}, fmt.Errorf("core: observation sketch: %w", err)
	}
	return obsSnapshot{
		scanned:  int64(binary.BigEndian.Uint64(b[0:])),
		survived: int64(binary.BigEndian.Uint64(b[8:])),
		tRows:    int64(binary.BigEndian.Uint64(b[16:])),
		tBytes:   int64(binary.BigEndian.Uint64(b[24:])),
		sketch:   sk,
	}, nil
}

// adaptDecision is the agreed mid-query plan: what to switch to (or keep),
// the hot set when the hybrid partitioner engages, and the human-readable
// rationale surfaced as Result.SwitchReason.
type adaptDecision struct {
	kind   switchKind
	reason string
	hot    *skew.HotSet
}

// marshal encodes kind, length-prefixed reason, then the hot set (empty
// when the decision is not hybrid).
func (d *adaptDecision) marshal() []byte {
	hot := d.hot
	if hot == nil {
		hot = skew.NewHotSet(nil)
	}
	buf := []byte{byte(d.kind)}
	buf = binary.AppendUvarint(buf, uint64(len(d.reason)))
	buf = append(buf, d.reason...)
	return append(buf, hot.Marshal()...)
}

func unmarshalDecision(b []byte) (*adaptDecision, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("core: empty switch decision")
	}
	kind := switchKind(b[0])
	rl, n := binary.Uvarint(b[1:])
	if n <= 0 || uint64(len(b[1+n:])) < rl {
		return nil, fmt.Errorf("core: truncated switch decision")
	}
	rest := b[1+n:]
	reason := string(rest[:rl])
	hot, err := skew.UnmarshalHotSet(rest[rl:])
	if err != nil {
		return nil, fmt.Errorf("core: switch decision hot set: %w", err)
	}
	return &adaptDecision{kind: kind, reason: reason, hot: hot}, nil
}

// adaptState carries the agreed decision from the designated worker's
// program out to the facade (Result.Switched). One per adaptive query.
type adaptState struct {
	mu  sync.Mutex
	dec *adaptDecision // guarded by mu
}

func (s *adaptState) store(d *adaptDecision) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dec = d
	s.mu.Unlock()
}

func (s *adaptState) load() *adaptDecision {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec
}

// sendObserved ships one observation snapshot to the designated worker.
func (e *Engine) sendObserved(from, stream string, o obsSnapshot, dest string) error {
	payload := o.marshal()
	e.rec.Add(metrics.AdaptBytes, int64(len(payload)))
	return e.bus.Send(from, dest, netsim.Msg{Type: netsim.MsgControl, Stream: stream, Payload: payload})
}

// recvObserved receives and merges `parts` snapshots at the designated
// worker. Failure semantics match recvSketches: a bad part is recorded and
// the fan-in keeps draining; MsgError and context cancellation are
// terminal.
func (e *Engine) recvObserved(ctx context.Context, at, stream string, parts int) (obsSnapshot, error) {
	out := obsSnapshot{sketch: skew.NewSketch(e.cfg.SkewSketchKeys)}
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return out, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return out, err
	}
	defer r.Unroute(netsim.MsgControl, stream)
	defer r.Unroute(netsim.MsgError, stream)
	var consumeErr error
	for i := 0; i < parts; i++ {
		select {
		case env := <-ch:
			if consumeErr != nil {
				continue // already failed; keep draining the protocol
			}
			o, err := unmarshalObs(env.Payload)
			if err != nil {
				consumeErr = fmt.Errorf("core: %s observation %s from %s: %w", at, stream, env.From, err)
				continue
			}
			out.merge(o)
		case env := <-abort:
			return out, decodeAbort(at, stream, env)
		case <-ctx.Done():
			return out, ctxAbort(ctx, at, stream)
		}
	}
	return out, consumeErr
}

// sendDecision broadcasts the agreed decision.
func (e *Engine) sendDecision(from, stream string, d *adaptDecision, dests []string) error {
	payload := d.marshal()
	for _, dest := range dests {
		e.rec.Add(metrics.AdaptBytes, int64(len(payload)))
		if err := e.bus.Send(from, dest, netsim.Msg{Type: netsim.MsgControl, Stream: stream, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// recvDecision blocks for the agreed decision (one part, from the
// designated worker) — the DB workers' side of the handshake.
func (e *Engine) recvDecision(ctx context.Context, at, stream string) (*adaptDecision, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return nil, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return nil, err
	}
	defer r.Unroute(netsim.MsgControl, stream)
	defer r.Unroute(netsim.MsgError, stream)
	select {
	case env := <-ch:
		d, err := unmarshalDecision(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("core: %s decision %s from %s: %w", at, stream, env.From, err)
		}
		return d, nil
	case env := <-abort:
		return nil, decodeAbort(at, stream, env)
	case <-ctx.Done():
		return nil, ctxAbort(ctx, at, stream)
	}
}

// decisionWatch is the JEN workers' side of the decision receive: the
// routes are opened before the scan starts, so the scan loop can poll for
// the decision between batches without blocking, and the program can block
// on it after the scan. close must run before the program ends.
type decisionWatch struct {
	r      *netsim.Router
	at     string
	stream string
	ch     <-chan netsim.Envelope
	abort  <-chan netsim.Envelope
	d      *adaptDecision
	err    error
	closed bool
}

// watchDecision opens the decision routes at a JEN endpoint.
func (e *Engine) watchDecision(at, stream string) (*decisionWatch, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return nil, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return nil, err
	}
	return &decisionWatch{r: r, at: at, stream: stream, ch: ch, abort: abort}, nil
}

// consume decodes a decision envelope into the watch's terminal state.
func (w *decisionWatch) consume(env netsim.Envelope) {
	d, err := unmarshalDecision(env.Payload)
	if err != nil {
		w.err = fmt.Errorf("core: %s decision %s from %s: %w", w.at, w.stream, env.From, err)
		return
	}
	w.d = d
}

// poll returns the decision if it has arrived, (nil, nil) if not yet.
// An incoming MsgError is terminal, exactly as in the blocking receives.
func (w *decisionWatch) poll() (*adaptDecision, error) {
	if w.d != nil || w.err != nil {
		return w.d, w.err
	}
	select {
	case env := <-w.ch:
		w.consume(env)
	case env := <-w.abort:
		w.err = decodeAbort(w.at, w.stream, env)
	default:
	}
	return w.d, w.err
}

// wait blocks until the decision arrives, a peer aborts the stream, or the
// program context is canceled.
func (w *decisionWatch) wait(ctx context.Context) (*adaptDecision, error) {
	if w.d != nil || w.err != nil {
		return w.d, w.err
	}
	select {
	case env := <-w.ch:
		w.consume(env)
	case env := <-w.abort:
		w.err = decodeAbort(w.at, w.stream, env)
	case <-ctx.Done():
		return nil, ctxAbort(ctx, w.at, w.stream)
	}
	return w.d, w.err
}

// close releases the routes; safe to call twice.
func (w *decisionWatch) close() {
	if w.closed {
		return
	}
	w.closed = true
	w.r.Unroute(netsim.MsgControl, w.stream)
	w.r.Unroute(netsim.MsgError, w.stream)
}

// decideSwitch is the decision point: extrapolate the merged observations
// to full-query statistics, re-cost the committed shuffle plan against the
// alternatives, and apply the hysteresis margin. lTotal is the full L row
// count (the catalog cardinality the σ_L extrapolation multiplies), and
// lRowBytes the wire width of one L' row.
func (e *Engine) decideSwitch(o obsSnapshot, n, m int, lTotal, lRowBytes int64) *adaptDecision {
	sigmaL := 1.0
	if o.scanned > 0 {
		sigmaL = float64(o.survived) / float64(o.scanned)
	}
	lRows := int64(sigmaL * float64(lTotal))
	hotShare := o.sketch.HottestShare()
	stats := costmodel.PlanStats{
		TPrimeRows: o.tRows, TPrimeBytes: o.tBytes,
		LPrimeRows: lRows, LPrimeBytes: lRows * lRowBytes,
		HotKeyShare: hotShare,
		JENWorkers:  n, DBWorkers: m,
	}
	mod := costmodel.New(costmodel.Rates{})
	cur := mod.ShuffleJoinCost(stats, false)
	bc := mod.BroadcastJoinCost(stats)
	thr := e.cfg.SkewThreshold
	if thr <= 0 {
		thr = 1 / (2 * float64(n))
	}
	hot := skew.NewHotSet(o.sketch.Hot(thr))
	hy := math.Inf(1)
	if hot.Len() > 0 {
		hy = mod.ShuffleJoinCost(stats, true)
	}

	alt, kind := bc, switchBroadcast
	if hy < bc {
		alt, kind = hy, switchHybrid
	}
	if !costmodel.ShouldSwitch(cur, alt, e.cfg.AdaptMargin) {
		kind = keepPlan
	}

	e.rec.Add(metrics.AdaptDecisions, 1)
	e.rec.Add(metrics.AdaptObsSigmaLPermille, int64(sigmaL*1000))
	e.rec.Add(metrics.AdaptObsTPrimeRows, o.tRows)
	e.rec.Add(metrics.AdaptObsHotPermille, int64(hotShare*1000))
	if kind != keepPlan {
		e.rec.Add(metrics.AdaptSwitches, 1)
	}

	d := &adaptDecision{
		kind: kind,
		reason: fmt.Sprintf(
			"observed σ_L=%.4f (L'≈%d rows), |T'|=%d rows (%d B), hottest key %.0f%% of scan prefix: re-cost keep=%.3gs broadcast=%.3gs hybrid=%.3gs (margin %.0f%%) → %s",
			sigmaL, lRows, o.tRows, o.tBytes, hotShare*100, cur, bc, hy, e.cfg.AdaptMargin*100, kind),
	}
	if kind == switchHybrid {
		d.hot = hot
	}
	return d
}

// coordinateSwitch runs at the designated JEN worker: collect every
// worker's observations, decide, record the decision for the facade, and
// broadcast it. On a fan-in failure it still broadcasts a fallback keep
// decision so no peer blocks on the handshake — the failure itself travels
// via MsgError and the context, exactly as in agreeHotSet.
func (e *Engine) coordinateSwitch(ctx context.Context, qs, me string, n, m int, lTotal, lRowBytes int64, st *adaptState) error {
	obs, err := e.recvObserved(ctx, me, qs+"adapt.obs", n+m)
	var d *adaptDecision
	if err != nil {
		d = &adaptDecision{kind: keepPlan, reason: "observation fan-in failed; keeping the committed plan"}
	} else {
		d = e.decideSwitch(obs, n, m, lTotal, lRowBytes)
	}
	st.store(d)
	firstErr(&err, e.sendDecision(me, qs+"adapt.dec", d, append(e.jenNames(), e.dbNames()...)))
	return err
}

// adaptJENWorker is one JEN worker's scan-side state machine: buffer and
// observe until the decision arrives, then route — possibly flushing what
// was buffered under the old plan through the new one.
type adaptJENWorker struct {
	e        *Engine
	qs       string
	me       string
	q        *plan.JoinQuery
	b        *batcher
	w, n     int
	scanKey  int // join-key column in the scan-projected layout
	watch    *decisionWatch
	destOf   func(key int64) string
	progress jen.Progress

	mu sync.Mutex
	// All the fields below are guarded by mu (morsel workers yield
	// concurrently).
	sketch    *skew.Sketch
	buffered  []*batch.Batch
	batches   int
	obsSent   bool
	dec       *adaptDecision
	part      *skew.Partitioner // hybrid routing, nil otherwise
	hotTuples int64
}

func newAdaptJENWorker(e *Engine, qs string, q *plan.JoinQuery, b *batcher, w, n, scanKey int, watch *decisionWatch, destOf func(key int64) string) *adaptJENWorker {
	return &adaptJENWorker{
		e: e, qs: qs, me: jenName(w), q: q, b: b, w: w, n: n,
		scanKey: scanKey, watch: watch, destOf: destOf,
		sketch: skew.NewSketch(e.cfg.SkewSketchKeys),
	}
}

// onBatch is the scan yield: poll for the decision, and either buffer
// (undecided or broadcast) or route (keep/hybrid) this batch.
func (a *adaptJENWorker) onBatch(sb *batch.Batch) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dec == nil {
		d, err := a.watch.poll()
		if err != nil {
			return err
		}
		if d != nil {
			if err := a.applyLocked(d); err != nil {
				return err
			}
		}
	}
	if a.dec != nil && a.dec.kind != switchBroadcast {
		return a.routeLiveLocked(sb)
	}
	// Undecided (or switched to broadcast): copy the wire projection into
	// the local buffer; while undecided, feed the sketch and count toward
	// the K-batch observation trigger.
	wb := batch.New(len(a.q.HDFSWire), sb.Len())
	keys := sb.Col(a.scanKey)
	perr := sb.Each(func(i int) error {
		if a.dec == nil && !a.obsSent {
			a.sketch.Add(keys[i].Int())
		}
		wb.AppendFrom(sb, i, a.q.HDFSWire)
		return nil
	})
	a.buffered = append(a.buffered, wb)
	if a.dec == nil {
		a.batches++
		if !a.obsSent && a.batches >= a.e.cfg.AdaptBatches {
			if err := a.sendObsLocked(); err != nil {
				return err
			}
		}
	}
	return perr
}

// sendObsLocked snapshots the live scan counters and ships them to the
// designated worker. Callers hold mu.
func (a *adaptJENWorker) sendObsLocked() error {
	a.obsSent = true
	o := obsSnapshot{
		scanned:  a.progress.Processed(),
		survived: a.progress.Survived(),
		sketch:   a.sketch,
	}
	return a.e.sendObserved(a.me, a.qs+"adapt.obs", o, jenName(a.e.jen.DesignatedWorker()))
}

// applyLocked installs the decision and, for keep/hybrid, flushes the
// buffered batches through the chosen routing. Callers hold mu.
func (a *adaptJENWorker) applyLocked(d *adaptDecision) error {
	a.dec = d
	if d.kind == switchBroadcast {
		return nil // keep buffering; the local probe consumes the buffers
	}
	if d.kind == switchHybrid {
		a.part = skew.NewPartitioner(a.n, d.hot, a.w)
	}
	route := a.routeFnLocked()
	for _, wb := range a.buffered {
		if err := a.b.scatterBatch(wb, nil, a.q.HDFSWireKey, route); err != nil {
			return err
		}
	}
	a.buffered = nil
	return nil
}

// routeFnLocked returns the destination function for the installed
// decision. Callers hold mu (the hybrid partitioner and hot counter are
// mu-guarded state).
func (a *adaptJENWorker) routeFnLocked() func(key int64) string {
	if a.part == nil {
		return a.destOf
	}
	return func(key int64) string {
		if a.part.IsHot(key) {
			a.hotTuples++
		}
		return jenName(a.part.Route(key))
	}
}

// routeLiveLocked scatters a live scan batch under the installed decision.
// Callers hold mu.
func (a *adaptJENWorker) routeLiveLocked(sb *batch.Batch) error {
	return a.b.scatterBatch(sb, a.q.HDFSWire, a.scanKey, a.routeFnLocked())
}

// decided returns the installed decision kind (keepPlan when none arrived,
// which only happens on failure paths).
func (a *adaptJENWorker) decided() switchKind {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.dec == nil {
		return keepPlan
	}
	return a.dec.kind
}

// takeBuffered hands the buffered wire batches to the broadcast probe.
func (a *adaptJENWorker) takeBuffered() []*batch.Batch {
	a.mu.Lock()
	defer a.mu.Unlock()
	bs := a.buffered
	a.buffered = nil
	return bs
}

// finish completes the handshake after the scan: send the snapshot if the
// scan ended before K batches (even on the failure path, mirroring
// agreeHotSet, so the designated fan-in always completes), coordinate at
// the designated worker, then block for the decision and apply it. It does
// not close the shuffle batcher — the caller's CloseWith still owns stream
// completion.
func (a *adaptJENWorker) finish(ctx context.Context, pr *prog, lTotal, lRowBytes int64, st *adaptState) {
	a.mu.Lock()
	if !a.obsSent {
		pr.fail(a.sendObsLocked())
	}
	a.mu.Unlock()
	if a.w == a.e.jen.DesignatedWorker() {
		pr.fail(a.e.coordinateSwitch(ctx, a.qs, a.me, a.n, a.e.db.Workers(), lTotal, lRowBytes, st))
	}
	d, err := a.watch.wait(ctx)
	pr.fail(err)
	if *pr.err == nil && d != nil {
		a.mu.Lock()
		if a.dec == nil {
			pr.fail(a.applyLocked(d))
		}
		a.mu.Unlock()
	}
	a.mu.Lock()
	hot := a.hotTuples
	a.mu.Unlock()
	a.e.rec.AddAt(metrics.JENShuffleHotTuples, a.w, hot)
}

// probeLocalBroadcast is the JEN worker's join after a broadcast switch:
// the shuffle never happened, the DB workers broadcast the full T', and the
// worker joins its buffered L' wire batches against it locally. The
// combined layout (HDFS wire ++ DB wire) and the post-join/aggregation
// path reproduce runBroadcast exactly, so the adapted result is identical
// to what a statically-planned broadcast would produce.
func (e *Engine) probeLocalBroadcast(buffered, dbBatches []*batch.Batch, q *plan.JoinQuery, agg *relop.HashAgg, w int, bud *mem.Budget) error {
	ht := relop.NewHashTable(q.DBWireKey)
	for _, db := range dbBatches {
		if err := ht.InsertBatch(db); err != nil {
			return err
		}
	}
	e.rec.AddAt(metrics.JoinBuildTuples, w, ht.Len())
	charged := chargeJoinBuild(bud, ht.Len(), len(q.DBProj))
	defer bud.Release(charged)
	ht.Build()

	cmb := &combiner{e: e, q: q, agg: agg}
	var probes int64
	wire := make(types.Row, len(q.HDFSWire))
	for _, lb := range buffered {
		probes += int64(lb.Len())
		keys := lb.Col(q.HDFSWireKey)
		err := lb.Each(func(i int) error {
			bucket := ht.Probe(keys[i].Int())
			if len(bucket) == 0 {
				return nil
			}
			for j := 0; j < lb.NumCols(); j++ {
				wire[j] = lb.Col(j)[i]
			}
			for _, dbr := range bucket {
				if err := cmb.add(wire, dbr); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if err := cmb.flush(); err != nil {
		return err
	}
	e.rec.AddAt(metrics.JoinProbeTuples, w, probes)
	e.rec.Add(metrics.JoinOutputTuples, cmb.output)
	return nil
}

// adaptObserveT contributes one DB worker's observed |T'| to the
// designated fan-in. It is sent even on the failure path (tw may be nil)
// so the fan-in always completes; in the zigzag program it goes out before
// the BF_H wait, because the designated worker broadcasts BF_H only after
// coordinating the switch — waiting first would deadlock the handshake.
func (e *Engine) adaptObserveT(pr *prog, qs string, q *plan.JoinQuery, i int, tw []types.Row) {
	o := obsSnapshot{
		tRows:  int64(len(tw)),
		tBytes: int64(len(tw)) * 16 * int64(len(q.DBProj)),
	}
	pr.fail(e.sendObserved(dbName(i), qs+"adapt.obs", o, jenName(e.jen.DesignatedWorker())))
}

// adaptRouteRows blocks for the agreed decision and routes T' accordingly.
// On the failure path it still drains the decision — under the aborted
// program context, so it cannot block — and ships nothing.
func (e *Engine) adaptRouteRows(ctx context.Context, pr *prog, qs string, q *plan.JoinQuery, b *batcher, i int, tw []types.Row, destOf func(key int64) string, runErr *error) {
	d, err := e.recvDecision(ctx, dbName(i), qs+"adapt.dec")
	pr.fail(err)
	if *runErr != nil {
		return
	}
	switch d.kind {
	case switchBroadcast:
		pr.fail(b.broadcastRows(tw))
	case switchHybrid:
		pr.fail(b.scatterRowsHybrid(tw, q.DBWireKey, d.hot, destOf))
	default:
		pr.fail(b.scatterRows(tw, q.DBWireKey, destOf))
	}
}
