package core

import (
	"fmt"
	"testing"

	"hybridwh/internal/analyzer"
	"hybridwh/internal/catalog"
	"hybridwh/internal/datagen"
	"hybridwh/internal/edw"
	"hybridwh/internal/format"
	"hybridwh/internal/hdfs"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/plan"
	"hybridwh/internal/sqlparse"
	"hybridwh/internal/types"
)

// starFixture is the N-way counterpart of fixture: a star dataset with the
// fact table on HDFS and the dimensions in the database, plus the analyzer
// environment that plans SQL over them.
type starFixture struct {
	eng *Engine
	s   datagen.Star
	env *analyzer.Env
}

func buildStarFixture(t testing.TB, bus netsim.Bus, dbWorkers, jenWorkers int, s datagen.Star, cfg Config) *starFixture {
	t.Helper()
	s = s.WithDefaults()
	if s.Seed == 0 {
		s.Seed = 13
	}
	rec := metrics.New()
	db, err := edw.New(dbWorkers, rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.AllDims() {
		schema := d.Schema()
		tbl, err := db.CreateTable(d.Name, schema, 0)
		if err != nil {
			t.Fatal(err)
		}
		var rows []types.Row
		if err := s.GenDim(d.Name, func(r types.Row) error {
			rows = append(rows, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Load(rows); err != nil {
			t.Fatal(err)
		}
		tbl.BuildStats(64)
	}
	dfs := hdfs.New(hdfs.Config{DataNodes: jenWorkers, DisksPerNode: 2, BlockSize: 8192, Replication: 2, Seed: 5})
	cat := catalog.New()
	if err := jen.CreateHDFSTable(dfs, cat, "fact", "/hw/fact", format.HWCName, s.FactSchema(), 3, s.GenFact); err != nil {
		t.Fatal(err)
	}
	jc, err := jen.New(jen.Config{Workers: jenWorkers, Locality: true, BatchRows: 64}, dfs, cat, rec)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BloomBits == 0 {
		cfg.BloomBits = 1 << 14
	}
	if cfg.BloomHashes == 0 {
		cfg.BloomHashes = 2
	}
	if cfg.BatchRows == 0 {
		cfg.BatchRows = 64
	}
	if cfg.WorkerThreads == 0 {
		cfg.WorkerThreads = 1
	}
	eng, err := New(db, jc, bus, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ent, err := cat.Lookup("fact")
	if err != nil {
		t.Fatal(err)
	}
	sources := []*analyzer.SourceMeta{{
		Name: "fact", Source: analyzer.SourceHDFS,
		Schema: ent.Schema, Rows: ent.Rows, Bytes: ent.Bytes,
	}}
	for _, d := range s.AllDims() {
		tbl, err := db.Table(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, &analyzer.SourceMeta{
			Name: d.Name, Source: analyzer.SourceDB,
			Schema: tbl.Schema, Rows: tbl.Rows(),
			Bytes: tbl.Rows() * int64(16*tbl.Schema.Len()),
		})
	}
	env := analyzer.NewEnv(sources...)
	env.Options.Workers = jenWorkers
	return &starFixture{eng: eng, s: s, env: env}
}

// multiPlan analyzes sql against the fixture's environment.
func (f *starFixture) multiPlan(t testing.TB, sql string) *plan.MultiQuery {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	tree, _, err := analyzer.Analyze(q, f.env)
	if err != nil {
		t.Fatal(err)
	}
	mq, err := analyzer.Lower(tree, f.env)
	if err != nil {
		t.Fatal(err)
	}
	return mq
}

// multiReference evaluates sql with the single-threaded nested-loop oracle.
func (f *starFixture) multiReference(t testing.TB, sql string) []types.Row {
	t.Helper()
	tables := map[string]analyzer.RefTable{}
	fact := analyzer.RefTable{Schema: f.s.FactSchema()}
	if err := f.s.GenFact(func(r types.Row) error {
		fact.Rows = append(fact.Rows, r.Clone())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tables["fact"] = fact
	for _, d := range f.s.AllDims() {
		rt := analyzer.RefTable{Schema: d.Schema()}
		if err := f.s.GenDim(d.Name, func(r types.Row) error {
			rt.Rows = append(rt.Rows, r.Clone())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		tables[d.Name] = rt
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, _, err := analyzer.Reference(q, tables, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func assertRowsEqual(t testing.TB, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("row %d: %s, want %s", i, got[i], want[i])
		}
	}
}

const starTestSQL = `select f.grp, count(*), sum(f.measure)
	from fact f
	join customer c on f.fk_customer = c.key
	join product p on f.fk_product = p.key
	join store s on f.fk_store = s.key
	where c.attr < 400 and p.attr < 500 and s.attr < 700
	group by f.grp`

func smallStar() datagen.Star {
	return datagen.Star{
		FactRows: 5000,
		Dims: []datagen.DimSpec{
			{Name: "customer", Rows: 300},
			{Name: "product", Rows: 100},
			{Name: "store", Rows: 40},
		},
		Seed:   13,
		Groups: 6,
	}
}

// TestRunMultiMatchesReference drives the engine-level multi-join executor
// directly with a mix of per-edge algorithms (the injected advisor forces
// the largest dimension to repartition, the rest broadcast).
func TestRunMultiMatchesReference(t *testing.T) {
	f := buildStarFixture(t, netsim.NewChanBus(256), 3, 4, smallStar(), Config{})
	defer f.eng.Close()
	// DimRows is the post-selectivity estimate: customer ≈90, product ≈30,
	// store ≈12 under the fixed 0.3 comparison selectivity.
	f.env.Advise = func(es analyzer.EdgeStats) (plan.EdgeAlg, string) {
		if es.DimRows > 50 {
			return plan.EdgeRepartition, "forced repartition"
		}
		return plan.EdgeBroadcast, "forced broadcast"
	}
	mq := f.multiPlan(t, starTestSQL)
	res, err := f.eng.RunMulti(mq)
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, res.Rows, f.multiReference(t, starTestSQL))
	if len(res.Edges) != 3 {
		t.Fatalf("edges: %+v", res.Edges)
	}
	var nRep, nBc int
	for _, ed := range res.Edges {
		switch ed.Algorithm {
		case plan.EdgeRepartition:
			nRep++
		case plan.EdgeBroadcast:
			nBc++
		}
	}
	if nRep == 0 || nBc == 0 {
		t.Errorf("want a mix of algorithms, got %d repartition / %d broadcast", nRep, nBc)
	}
}

// TestMultiCascadeReducesShuffle runs the same all-repartition plan with
// and without cascaded Bloom filters: results are identical but the
// cascade must shuffle strictly fewer bytes (the filters drop fact rows
// before the stage-0 shuffle).
func TestMultiCascadeReducesShuffle(t *testing.T) {
	f := buildStarFixture(t, netsim.NewChanBus(256), 3, 4, smallStar(), Config{})
	defer f.eng.Close()
	f.env.Advise = func(analyzer.EdgeStats) (plan.EdgeAlg, string) {
		return plan.EdgeRepartition, "forced repartition"
	}
	run := func(cascade bool) ([]types.Row, int64) {
		f.env.Options.CascadeBloom = cascade
		mq := f.multiPlan(t, starTestSQL)
		f.eng.rec.Reset()
		res, err := f.eng.RunMulti(mq)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows, res.Metrics[metrics.JENShuffleBytes]
	}
	withRows, withBytes := run(true)
	withoutRows, withoutBytes := run(false)
	assertRowsEqual(t, withRows, withoutRows)
	if withBytes >= withoutBytes {
		t.Errorf("cascaded Bloom shuffled %d bytes, no-cascade %d — want a reduction", withBytes, withoutBytes)
	}
	t.Logf("shuffled bytes: cascade=%d, no-cascade=%d (%.1f%% saved)",
		withBytes, withoutBytes, 100*(1-float64(withBytes)/float64(withoutBytes)))
}

// TestMultiAdaptiveSwitch forces repartition onto dimensions small enough
// that the mid-query decision point flips later edges to broadcast; the
// result must still match the reference.
func TestMultiAdaptiveSwitch(t *testing.T) {
	f := buildStarFixture(t, netsim.NewChanBus(256), 3, 4, smallStar(), Config{AdaptiveSwitch: true})
	defer f.eng.Close()
	f.env.Advise = func(analyzer.EdgeStats) (plan.EdgeAlg, string) {
		return plan.EdgeRepartition, "forced repartition (misprediction)"
	}
	// No cascade: the intermediate stays large relative to the tiny
	// dimensions, which is exactly the shape where re-costing flips a
	// repartition edge to broadcast.
	f.env.Options.CascadeBloom = false
	mq := f.multiPlan(t, starTestSQL)
	res, err := f.eng.RunMulti(mq)
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, res.Rows, f.multiReference(t, starTestSQL))
	if res.Metrics[metrics.AdaptDecisions] == 0 {
		t.Fatalf("no adaptive decision points evaluated: %+v", res.Edges)
	}
	var switched bool
	for _, ed := range res.Edges {
		if ed.Switched {
			switched = true
			if ed.Algorithm != plan.EdgeBroadcast {
				t.Errorf("switched edge %s still reports %s", ed.Dim, ed.Algorithm)
			}
			if ed.SwitchReason == "" {
				t.Errorf("switched edge %s has no reason", ed.Dim)
			}
		}
	}
	if !switched {
		t.Errorf("tiny dimensions on repartition edges: expected at least one mid-query switch, got %+v", res.Edges)
	}
}

// TestRunMultiValidates rejects malformed plans up front.
func TestRunMultiValidates(t *testing.T) {
	f := buildStarFixture(t, netsim.NewChanBus(256), 2, 2, smallStar(), Config{})
	defer f.eng.Close()
	if _, err := f.eng.RunMulti(&plan.MultiQuery{FactTable: "fact"}); err == nil {
		t.Fatal("RunMulti accepted a plan with no edges")
	}
}

// BenchmarkStarJoin measures the 3-dimension star join end to end, with
// and without cascaded semi-join reduction. "shuffleMB" reports the bytes
// the fact side shuffled per iteration: the cascade's win is that number
// dropping while rows/s holds or improves.
func BenchmarkStarJoin(b *testing.B) {
	s := datagen.Star{
		FactRows: 50_000,
		Dims: []datagen.DimSpec{
			{Name: "customer", Rows: 2000},
			{Name: "product", Rows: 500},
			{Name: "store", Rows: 100},
		},
		Seed:   13,
		Groups: 10,
	}
	for _, cascade := range []bool{true, false} {
		b.Run(fmt.Sprintf("cascade=%v", cascade), func(b *testing.B) {
			f := buildStarFixture(b, netsim.NewChanBus(256), 3, 4, s, Config{})
			defer f.eng.Close()
			f.env.Advise = func(analyzer.EdgeStats) (plan.EdgeAlg, string) {
				return plan.EdgeRepartition, "benchmark: all repartition"
			}
			f.env.Options.CascadeBloom = cascade
			mq := f.multiPlan(b, starTestSQL)
			b.ResetTimer()
			var shuffled int64
			for i := 0; i < b.N; i++ {
				res, err := f.eng.RunMulti(mq)
				if err != nil {
					b.Fatal(err)
				}
				shuffled += res.Metrics[metrics.JENShuffleBytes]
			}
			b.StopTimer()
			b.ReportMetric(float64(shuffled)/float64(b.N)/(1<<20), "shuffleMB")
			b.ReportMetric(float64(s.FactRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
