package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"hybridwh/internal/catalog"
	"hybridwh/internal/cluster"
	"hybridwh/internal/edw"
	"hybridwh/internal/format"
	"hybridwh/internal/hdfs"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/types"
)

// buildSkewFixture is buildFixture with a heavily skewed L key
// distribution — half of L lands on join key 7, the rest stays uniform —
// and a caller-controlled engine config, so the same data can run with the
// skew-resilient shuffle on and off. Key 7 survives the fixture's
// predicates on both sides, so the hot key dominates the surviving shuffle.
func buildSkewFixture(t testing.TB, bus netsim.Bus, dbWorkers, jenWorkers, tN, lN int, cfg Config) *fixture {
	t.Helper()
	return buildSkewFixtureKeys(t, bus, dbWorkers, jenWorkers, tN, lN, cfg, func(rng *rand.Rand) int {
		if rng.Intn(2) == 0 {
			return rng.Intn(300)
		}
		return 7
	})
}

// buildSkewFixtureKeys is buildSkewFixture with a caller-chosen L join-key
// distribution (the benchmarks draw Zipf keys instead of the planted 50%
// heavy hitter).
func buildSkewFixtureKeys(t testing.TB, bus netsim.Bus, dbWorkers, jenWorkers, tN, lN int, cfg Config, nextKey func(*rand.Rand) int) *fixture {
	t.Helper()
	rec := metrics.New()
	rng := rand.New(rand.NewSource(77))

	db, err := edw.New(dbWorkers, rec)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", tSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var tRows []types.Row
	for i := 0; i < tN; i++ {
		jk := rng.Intn(200)
		tRows = append(tRows, types.Row{
			types.Int64(int64(i)),
			types.Int32(int32(jk)),
			types.Int32(int32(jk*5 + rng.Intn(5))),
			types.Int32(int32(rng.Intn(1000))),
			types.Date(int32(16000 + rng.Intn(30))),
		})
	}
	if err := tbl.Load(tRows); err != nil {
		t.Fatal(err)
	}
	tbl.BuildStats(64)
	if err := tbl.CreateIndex("cor_ind_key", []int{2, 3, 1}); err != nil {
		t.Fatal(err)
	}

	dfs := hdfs.New(hdfs.Config{DataNodes: jenWorkers, DisksPerNode: 2, BlockSize: 8192, Replication: 2, Seed: 5})
	cat := catalog.New()
	var lRows []types.Row
	gen := func(emit func(types.Row) error) error {
		for i := 0; i < lN; i++ {
			jk := nextKey(rng)
			row := types.Row{
				types.Int32(int32(jk)),
				types.Int32(int32(((jk+60)%300)*3 + rng.Intn(3))),
				types.Int32(int32(rng.Intn(1000))),
				types.Date(int32(16000 + rng.Intn(30))),
				types.String(fmt.Sprintf("grp-%05d/page", rng.Intn(12))),
			}
			lRows = append(lRows, row)
			if err := emit(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := jen.CreateHDFSTable(dfs, cat, "L", "/hw/L", format.HWCName, lSchema(), 3, gen); err != nil {
		t.Fatal(err)
	}
	jc, err := jen.New(jen.Config{Workers: jenWorkers, Locality: true, BatchRows: 64}, dfs, cat, rec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(db, jc, bus, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, dfs: dfs, tRows: tRows, lRows: lRows, tSch: tSchema(), lSch: lSchema()}
}

func skewTestConfig(threshold float64) Config {
	return Config{
		BloomBits: 1 << 14, BloomHashes: 2, BatchRows: 64, WorkerThreads: 1,
		SkewThreshold: threshold,
	}
}

// TestSkewedJoinMatchesPlainPartitioner is the result-identity guarantee:
// on identically-seeded skewed data, every algorithm family returns exactly
// the reference answer with the skew-resilient shuffle on, off, and at a
// threshold no key reaches (empty agreed hot set) — on both transports.
func TestSkewedJoinMatchesPlainPartitioner(t *testing.T) {
	transports := []struct {
		name   string
		newBus func() netsim.Bus
	}{
		{"chan", func() netsim.Bus { return netsim.NewChanBus(256) }},
		{"tcp", func() netsim.Bus { return netsim.NewTCPBus(256) }},
	}
	algs := []Algorithm{DBSideBloom, Broadcast, Repartition, RepartitionBloom, Zigzag}
	for _, tr := range transports {
		for _, threshold := range []float64{0, 0.05, 0.999} {
			t.Run(fmt.Sprintf("%s/threshold=%v", tr.name, threshold), func(t *testing.T) {
				f := buildSkewFixture(t, tr.newBus(), 2, 3, 600, 3000, skewTestConfig(threshold))
				defer f.eng.Close()
				want := reference(t, f, 300, 400)
				if len(want) == 0 {
					t.Fatal("reference result empty; fixture too sparse")
				}
				q := exampleQuery(t, f, 300, 400)
				for _, alg := range algs {
					f.eng.Recorder().Reset()
					res, err := f.eng.Run(q, alg)
					if err != nil {
						t.Fatalf("%v: %v", alg, err)
					}
					checkResult(t, res, want, alg)
				}
			})
		}
	}
}

// TestSkewShuffleBalance is the load-balance guarantee: with half of L' on
// one key, the plain agreed-hash partitioner overloads that key's home
// worker past 3× the mean, while the hybrid partitioner holds every worker
// within 1.5× — with identical per-destination totals for cold keys and an
// identical query result.
func TestSkewShuffleBalance(t *testing.T) {
	const dbW, jenW, tN, lN = 3, 6, 1500, 9000
	run := func(threshold float64) (*Result, *metrics.Recorder, map[int64][2]int64) {
		f := buildSkewFixture(t, netsim.NewChanBus(256), dbW, jenW, tN, lN, skewTestConfig(threshold))
		defer f.eng.Close()
		want := reference(t, f, 300, 400)
		q := exampleQuery(t, f, 300, 400)
		res, err := f.eng.Run(q, RepartitionBloom)
		if err != nil {
			t.Fatal(err)
		}
		return res, f.eng.Recorder(), want
	}

	plainRes, plainRec, want := run(0)
	skewRes, skewRec, _ := run(0.05)

	plainRatio := plainRec.BalanceRatio(metrics.JENRecvTuples)
	skewRatio := skewRec.BalanceRatio(metrics.JENRecvTuples)
	if plainRatio <= 3 {
		t.Errorf("plain partitioner balance ratio %.2f; fixture not skewed enough (want > 3)", plainRatio)
	}
	if skewRatio > 1.5 {
		t.Errorf("skew-resilient shuffle balance ratio %.2f, want ≤ 1.5", skewRatio)
	}
	if plainRec.Get(metrics.JENRecvTuples) != skewRec.Get(metrics.JENRecvTuples) {
		t.Errorf("total shuffled tuples changed: %d plain vs %d skew — routing must only move rows, not drop them",
			plainRec.Get(metrics.JENRecvTuples), skewRec.Get(metrics.JENRecvTuples))
	}
	if skewRec.Get(metrics.SkewHotKeys) == 0 {
		t.Error("no hot keys agreed despite the planted heavy hitter")
	}
	if hot := skewRec.Get(metrics.JENShuffleHotTuples); hot < int64(lN)/4 {
		t.Errorf("only %d hot tuples scattered; the planted key holds ~half of L", hot)
	}
	checkResult(t, plainRes, want, RepartitionBloom)
	checkResult(t, skewRes, want, RepartitionBloom)

	// An unreachable threshold produces an empty hot set: the deferred
	// shuffle must reproduce the plain partitioner's receive vector exactly.
	_, inertRec, _ := run(0.999)
	if !reflect.DeepEqual(inertRec.Vector(metrics.JENRecvTuples), plainRec.Vector(metrics.JENRecvTuples)) {
		t.Errorf("empty hot set changed the shuffle: recv %v vs plain %v",
			inertRec.Vector(metrics.JENRecvTuples), plainRec.Vector(metrics.JENRecvTuples))
	}
	if inertRec.Get(metrics.SkewHotKeys) != 0 {
		t.Errorf("hot set not empty at threshold 0.999: %d keys", inertRec.Get(metrics.SkewHotKeys))
	}
}

// TestSkewedJoinDeterministicCounters: at WorkerThreads=1 the whole skew
// machinery — sketch, hot set, round-robin placement — is deterministic, so
// two identically-seeded engines produce bit-identical counter snapshots.
func TestSkewedJoinDeterministicCounters(t *testing.T) {
	sweep := func() []map[string]int64 {
		f := buildSkewFixture(t, netsim.NewChanBus(256), 2, 3, 600, 3000, skewTestConfig(0.05))
		defer f.eng.Close()
		q := exampleQuery(t, f, 300, 400)
		var out []map[string]int64
		for _, alg := range []Algorithm{Repartition, RepartitionBloom, Zigzag} {
			f.eng.Recorder().Reset()
			res, err := f.eng.Run(q, alg)
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			out = append(out, res.Metrics)
		}
		return out
	}
	first, second := sweep(), sweep()
	for i := range first {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Errorf("run %d: skewed-join counter snapshots differ between identically-seeded sweeps", i)
			for k, v := range second[i] {
				if first[i][k] != v {
					t.Errorf("run %d counter %s: %d vs %d", i, k, first[i][k], v)
				}
			}
		}
	}
}

// TestInjectedFailuresAbortSkewedShuffle extends the fault matrix across
// the skew path's extra protocol phases (sketch fan-in, hot-set broadcast,
// deferred shuffle): a worker dying mid skew-shuffle must still produce one
// classified error, within the deadline, with no leaked goroutines.
func TestInjectedFailuresAbortSkewedShuffle(t *testing.T) {
	transports := []struct {
		name   string
		newBus func() netsim.Bus
	}{
		{"chan", func() netsim.Bus { return netsim.NewChanBus(64) }},
		{"tcp", func() netsim.Bus { return netsim.NewTCPBus(64) }},
	}
	// The kill counts put the death in different phases: 4 lands around the
	// early Bloom/sketch/hot-set exchange, 12 inside the deferred shuffle
	// (the skew path sends nothing row-bearing before the hot set arrives,
	// so by message 12 the endpoint is mid skew-shuffle).
	kills := []struct {
		name  string
		kill  string
		after int64
	}{
		{"jen-early", cluster.JENName(1), 4},
		{"jen-mid-shuffle", cluster.JENName(1), 12},
		{"db-worker", cluster.DBName(1), 4},
	}
	for _, tr := range transports {
		for _, alg := range []Algorithm{Repartition, Zigzag} {
			for _, k := range kills {
				t.Run(fmt.Sprintf("%s/%s/%s", tr.name, alg, k.name), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					ctx, cancel := context.WithTimeout(context.Background(), abortTestDeadline)
					defer cancel()
					f := buildSkewFixture(t, tr.newBus(), 2, 3, 600, 3000, skewTestConfig(0.05))
					f.eng.Bus().(netsim.FaultInjector).KillEndpointAfter(k.kill, k.after)
					q := exampleQuery(t, f, 300, 400)
					start := time.Now()
					_, err := f.eng.RunCtx(ctx, q, alg)
					elapsed := time.Since(start)
					if err == nil {
						t.Fatal("query succeeded despite injected failure")
					}
					if !errors.Is(err, netsim.ErrEndpointDown) {
						t.Fatalf("err = %v, want errors.Is netsim.ErrEndpointDown", err)
					}
					if elapsed >= abortTestDeadline {
						t.Fatalf("abort took %v; protocol stalled until the deadline", elapsed)
					}
					if err := f.eng.Close(); err != nil {
						t.Logf("engine close after abort: %v", err)
					}
					checkNoGoroutineLeak(t, baseline)
				})
			}
		}
	}
}
