// Package core implements the paper's contribution: the four join
// algorithms for hybrid warehouses (Section 3) executed across the parallel
// database (internal/edw) and JEN (internal/jen), exchanging Bloom filters
// and rows over the message bus (internal/netsim) in parallel between every
// DB worker and its group of JEN workers.
//
// Each algorithm runs one goroutine per DB worker and one per JEN worker —
// the worker programs — that communicate only through the bus, exactly
// mirroring the paper's data flows (Figures 1–4). Queries are issued at the
// database side and results return to the database side (Section 2).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hybridwh/internal/cluster"
	"hybridwh/internal/edw"
	"hybridwh/internal/jen"
	"hybridwh/internal/mem"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/plan"
	"hybridwh/internal/types"
)

// Algorithm selects a join algorithm.
type Algorithm int

// The join algorithms of Section 3.
const (
	// DBSide ships filtered HDFS data into the database (Polybase-style).
	DBSide Algorithm = iota
	// DBSideBloom is DBSide with BF_DB pruning the HDFS scan (Figure 1).
	DBSideBloom
	// Broadcast sends T' to every JEN worker; no HDFS shuffle (Figure 2).
	Broadcast
	// Repartition shuffles L' and routes T' by the agreed hash (Figure 3,
	// without the Bloom filter).
	Repartition
	// RepartitionBloom is Repartition with BF_DB (Figure 3).
	RepartitionBloom
	// Zigzag uses Bloom filters both ways: BF_DB prunes the shuffle, BF_H
	// prunes the database transfer (Figure 4).
	Zigzag
)

// String names the algorithm as the paper's figures do.
func (a Algorithm) String() string {
	switch a {
	case DBSide:
		return "db"
	case DBSideBloom:
		return "db(BF)"
	case Broadcast:
		return "broadcast"
	case Repartition:
		return "repartition"
	case RepartitionBloom:
		return "repartition(BF)"
	case Zigzag:
		return "zigzag"
	case SemiJoin:
		return "semijoin"
	case ZigzagDBVariant:
		return "zigzag-db"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Algorithms lists every implemented algorithm: the paper's six plus the
// extensions (the exact-semijoin baseline and the dismissed DB-side zigzag
// variant).
func Algorithms() []Algorithm {
	return []Algorithm{DBSide, DBSideBloom, Broadcast, Repartition, RepartitionBloom, Zigzag, SemiJoin, ZigzagDBVariant}
}

// PaperAlgorithms lists the six algorithms the paper evaluates.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{DBSide, DBSideBloom, Broadcast, Repartition, RepartitionBloom, Zigzag}
}

// Config tunes the engine.
type Config struct {
	// BloomBits and BloomHashes size every Bloom filter. The paper uses
	// 128M bits and 2 hashes for 16M join keys; scale proportionally.
	BloomBits   uint64
	BloomHashes int
	// BatchRows is the wire batch size. Defaults to the JEN batch size.
	BatchRows int
	// SpillBudgetBytes bounds each JEN worker's in-memory hash table for
	// the repartition-based joins; beyond it the build side grace-spills
	// to disk (the paper's stated future work). Zero = unbounded memory,
	// the paper's current behaviour.
	SpillBudgetBytes int64
	// SpillDir hosts spill files ("" = the OS temp dir).
	SpillDir string
	// BroadcastRelay switches the broadcast join to the paper's alternative
	// §4.3 transfer scheme: each DB worker ships its partition to a single
	// JEN worker, which relays it to all others. Less strain on the
	// inter-cluster link, one extra intra-HDFS transfer round (the paper
	// measured the direct scheme faster and kept it; this option is the
	// ablation).
	BroadcastRelay bool
	// RowAtATime reverts the repartition pipeline on the JEN side to the
	// seed's row-at-a-time execution: per-row scan yields, sends, hash-table
	// inserts/probes and aggregation. Counters are identical either way; the
	// flag exists as the measured baseline for the vectorized batch path
	// (BenchmarkScanFilterJoin).
	RowAtATime bool
	// WorkerThreads is the intra-worker parallelism degree: how many morsel
	// goroutines each JEN worker runs for its scan→filter→shuffle/build
	// stage and its probe stage (the paper's multi-threaded JEN worker,
	// Figure 7). Defaults to runtime.GOMAXPROCS(0). 1 reproduces the
	// single-threaded pipeline bit-identically, counters included; higher
	// degrees keep every deterministic counter (totals, message and byte
	// counts) and the query result identical, while the per-thread split
	// (metrics.JENMorselTuples/JoinProbeSplit .max) depends on scheduling.
	// Row-at-a-time mode and the spilling join ignore it and stay
	// single-threaded.
	WorkerThreads int
	// SkewThreshold enables skew-resilient shuffling for the repartition
	// and zigzag joins: any join key holding at least this share of a
	// worker-set's surviving HDFS rows (as measured by a streaming
	// heavy-hitter sketch built during the scan) is treated as hot — its L'
	// rows scatter round-robin across all JEN workers instead of hashing to
	// one, and its T' rows are replicated to every JEN worker, keeping the
	// join exact (see internal/skew). 0 disables the machinery entirely and
	// the shuffle is bit-identical to the plain agreed-hash partitioner.
	// Sensible values are 1/(2·JENWorkers) .. 0.2. The skew path defers the
	// shuffle until the scan completes (the hot set must be agreed first),
	// trading scan/shuffle overlap for balance; row-at-a-time mode ignores
	// it. At WorkerThreads=1 every counter stays deterministic; with more
	// threads the round-robin placement of hot rows depends on scan
	// interleaving, so per-destination shuffle splits (the .max counters)
	// become diagnostic while totals and results stay exact.
	SkewThreshold float64
	// SkewSketchKeys is the heavy-hitter sketch capacity (counters per
	// thread). The sketch is exact — and the hot set independent of thread
	// count and merge order — while each thread sees fewer than twice this
	// many distinct surviving keys; beyond that the Misra-Gries error bound
	// (≤ rows/capacity) still guarantees every key above SkewThreshold is
	// caught, with possible borderline extras. Defaults to 256.
	SkewSketchKeys int
	// AdaptiveSwitch enables mid-query algorithm switching for the
	// repartition-based joins (see adaptive.go): after the first
	// AdaptBatches wire batches of the JEN scan, the observed σ_L, |T'| and
	// hot-key share re-cost the committed plan against broadcasting T' and
	// against the hybrid skew partitioner, and the cheaper plan (past an
	// AdaptMargin hysteresis) takes over mid-flight. Results are exact
	// either way; row-at-a-time mode ignores it. When on, it subsumes the
	// static skew path for those algorithms: plain hash routing is the
	// default and the hybrid partitioner engages only by observed decision
	// (SkewThreshold still supplies the hot bar, defaulting to
	// 1/(2·JENWorkers) when zero).
	AdaptiveSwitch bool
	// AdaptBatches is K, the number of wire batches each JEN worker buffers
	// before contributing its observation snapshot. Defaults to 8.
	AdaptBatches int
	// AdaptMargin is the hysteresis: an alternative plan must re-cost at
	// least this fraction cheaper than the committed plan to trigger a
	// switch. Defaults to 0.25.
	AdaptMargin float64
	// WireCompression frame-compresses every MsgRows payload with
	// internal/compress before it reaches the bus, trading CPU for
	// inter-cluster bandwidth (most visible on netsim.TCPBus links). Byte
	// counters record the compressed sizes. Both ends of the bus must agree
	// on the setting; the engine applies it symmetrically. A frame's
	// compressed size depends on the row order inside it, so combined with
	// WorkerThreads > 1 the byte counters leave the deterministic contract
	// (tuple and message counts stay exact).
	WireCompression bool
}

func (c Config) withDefaults(j *jen.Cluster) Config {
	if c.BloomBits == 0 {
		c.BloomBits = 128_000
	}
	if c.BloomHashes <= 0 {
		c.BloomHashes = 2
	}
	if c.BatchRows <= 0 {
		c.BatchRows = j.BatchRows()
	}
	if c.WorkerThreads <= 0 {
		c.WorkerThreads = runtime.GOMAXPROCS(0)
	}
	if c.SkewSketchKeys <= 0 {
		c.SkewSketchKeys = 256
	}
	if c.AdaptBatches <= 0 {
		c.AdaptBatches = 8
	}
	if c.AdaptMargin <= 0 {
		c.AdaptMargin = 0.25
	}
	return c
}

// Engine wires the two systems together.
type Engine struct {
	db  *edw.DB
	jen *jen.Cluster
	bus netsim.Bus
	rec *metrics.Recorder
	cfg Config

	routers map[string]*netsim.Router
	qid     atomic.Int64

	// Per-query memory budgets, keyed by the query's stream prefix ("q7/").
	// The prefix is already threaded through every worker program, so the
	// budget rides along without widening fifteen program signatures.
	budMu   sync.Mutex
	budgets map[string]*mem.Budget // guarded by budMu
}

// New registers every worker endpoint on the bus and returns an engine.
// All components must share the same metrics recorder.
func New(db *edw.DB, jc *jen.Cluster, bus netsim.Bus, rec *metrics.Recorder, cfg Config) (*Engine, error) {
	if db == nil || jc == nil || bus == nil {
		return nil, fmt.Errorf("core: db, jen and bus are all required")
	}
	if rec == nil {
		rec = metrics.New()
	}
	e := &Engine{db: db, jen: jc, bus: bus, rec: rec, cfg: cfg.withDefaults(jc), routers: map[string]*netsim.Router{}, budgets: map[string]*mem.Budget{}}
	for i := 0; i < db.Workers(); i++ {
		if err := e.register(cluster.DBName(i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < jc.Workers(); i++ {
		if err := e.register(cluster.JENName(i)); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (e *Engine) register(name string) error {
	inbox, err := e.bus.Register(name)
	if err != nil {
		return err
	}
	e.routers[name] = netsim.NewRouter(inbox)
	return nil
}

// Close stops the routers and the bus.
func (e *Engine) Close() error {
	for _, r := range e.routers {
		r.Stop()
	}
	return e.bus.Close()
}

// Recorder returns the shared metrics recorder.
func (e *Engine) Recorder() *metrics.Recorder { return e.rec }

// DB returns the database engine.
func (e *Engine) DB() *edw.DB { return e.db }

// JEN returns the HDFS-side engine.
func (e *Engine) JEN() *jen.Cluster { return e.jen }

// Bus returns the message bus.
func (e *Engine) Bus() netsim.Bus { return e.bus }

// budget returns the memory budget registered for a query's stream prefix,
// or nil when the query runs ungoverned.
func (e *Engine) budget(qs string) *mem.Budget {
	e.budMu.Lock()
	defer e.budMu.Unlock()
	return e.budgets[qs]
}

// Result is a completed query, returned at the database side.
type Result struct {
	Rows      []types.Row
	Schema    types.Schema
	Algorithm Algorithm
	// DBJoinStrategy is the database optimizer's final-join choice for the
	// DB-side algorithms (RepartitionBoth otherwise irrelevant).
	DBJoinStrategy edw.JoinStrategy
	// Switched reports the adaptive layer (Config.AdaptiveSwitch) changed
	// the plan mid-query; SwitchedTo names the runtime strategy it changed
	// to and SwitchReason carries the observed statistics and re-costs that
	// justified it.
	Switched     bool
	SwitchedTo   string
	SwitchReason string
	// Metrics is a snapshot of the counters accumulated during the run.
	Metrics map[string]int64
}

// Run executes the query with the chosen algorithm and returns the result
// at the database side.
func (e *Engine) Run(q *plan.JoinQuery, alg Algorithm) (*Result, error) {
	return e.RunCtx(context.Background(), q, alg)
}

// RunCtx is Run under a caller-supplied context: canceling ctx (or its
// deadline expiring) aborts the query — every worker program unwinds, the
// wire protocol is torn down, and the cancellation cause comes back wrapped
// in the returned error (errors.Is sees context.Canceled or
// context.DeadlineExceeded).
func (e *Engine) RunCtx(ctx context.Context, q *plan.JoinQuery, alg Algorithm) (*Result, error) {
	return e.RunCtxOpts(ctx, q, alg, RunOpts{})
}

// RunOpts carries per-run options that default to the engine's config.
type RunOpts struct {
	// Budget, when non-nil, governs this query's operator memory: scan
	// pools, hash-join builds and aggregation state all charge against it,
	// and the dynamic hybrid hash join sheds partitions to stay inside it.
	// It overrides Config.SpillBudgetBytes for this run. The caller keeps
	// ownership (the engine never closes it), so one budget may be shared
	// across queries — the scheduler's global-governance mode.
	Budget *mem.Budget
}

// RunCtxOpts is RunCtx with per-run options; RunOpts{} reproduces RunCtx
// exactly.
func (e *Engine) RunCtxOpts(ctx context.Context, q *plan.JoinQuery, alg Algorithm, opts RunOpts) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: query not started: %w", err)
	}
	qs := fmt.Sprintf("q%d/", e.qid.Add(1))
	if opts.Budget != nil {
		e.budMu.Lock()
		e.budgets[qs] = opts.Budget
		e.budMu.Unlock()
		defer func() {
			e.budMu.Lock()
			delete(e.budgets, qs)
			e.budMu.Unlock()
		}()
	}
	var (
		res *Result
		err error
	)
	switch alg {
	case DBSide, DBSideBloom:
		res, err = e.runDBSide(ctx, qs, q, alg == DBSideBloom)
	case Broadcast:
		res, err = e.runBroadcast(ctx, qs, q)
	case Repartition, RepartitionBloom, Zigzag:
		res, err = e.runHDFSSide(ctx, qs, q, alg)
	case SemiJoin:
		res, err = e.runSemiJoin(ctx, qs, q)
	case ZigzagDBVariant:
		res, err = e.runZigzagDB(ctx, qs, q)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", alg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %s query aborted: %w", alg, err)
	}
	res.Algorithm = alg
	res.Schema = q.OutputSchema
	res.Metrics = e.rec.Snapshot()
	return res, nil
}
