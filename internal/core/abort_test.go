package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"hybridwh/internal/cluster"
	"hybridwh/internal/format"
	"hybridwh/internal/hdfs"
	"hybridwh/internal/netsim"
)

// The failure-injection matrix: every join algorithm, on both transports,
// must turn an injected mid-query fault — a dying JEN worker, a dying DB
// worker, or the caller canceling — into exactly one classified error at the
// facade, within a bounded wall-clock time and without leaking a single
// worker goroutine. This is the proof of the distributed abort protocol
// (MsgError broadcast + per-query context teardown).

// abortDeadline bounds every failure-path query; if the abort protocol
// deadlocks, this deadline fires instead and the errors.Is assertion flags
// the DeadlineExceeded as the wrong classification.
const abortTestDeadline = 30 * time.Second

// checkNoGoroutineLeak polls until the goroutine count returns to the
// pre-fixture baseline, dumping a full stack diff if workers are stuck.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n <= baseline {
		return
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Fatalf("goroutine leak: %d live, baseline %d; stacks:\n%s", n, baseline, buf)
}

// cancelAfterBus wraps a transport and fires cancel after n successful
// delegated sends — a deterministic mid-query trigger point for the
// caller-cancellation scenario (timers would race the query).
type cancelAfterBus struct {
	netsim.Bus
	remaining atomic.Int64
	cancel    context.CancelFunc
}

func (b *cancelAfterBus) Send(from, to string, m netsim.Msg) error {
	err := b.Bus.Send(from, to, m)
	if err == nil && b.remaining.Add(-1) == 0 {
		b.cancel()
	}
	return err
}

func TestInjectedFailuresAbortEveryAlgorithm(t *testing.T) {
	transports := []struct {
		name   string
		newBus func() netsim.Bus
	}{
		{"chan", func() netsim.Bus { return netsim.NewChanBus(64) }},
		{"tcp", func() netsim.Bus { return netsim.NewTCPBus(64) }},
	}
	scenarios := []struct {
		name string
		// kill, when set, names the endpoint killed after a few messages.
		kill string
		// cancelAfter, when >0, cancels the query context after that many
		// successful sends.
		cancelAfter int64
		want        error
	}{
		{name: "fail-jen-worker", kill: cluster.JENName(1), want: netsim.ErrEndpointDown},
		{name: "fail-db-worker", kill: cluster.DBName(1), want: netsim.ErrEndpointDown},
		{name: "caller-cancel", cancelAfter: 6, want: context.Canceled},
	}
	// threads > 1 re-runs the whole matrix with morsel workers live: an abort
	// must also drain the concurrent process goroutines and the parallel
	// probe, not just the single-threaded pipeline.
	for _, threads := range []int{1, 3} {
		for _, tr := range transports {
			for _, alg := range []Algorithm{DBSide, Broadcast, Repartition, Zigzag} {
				for _, sc := range scenarios {
					t.Run(fmt.Sprintf("threads=%d/%s/%s/%s", threads, tr.name, alg, sc.name), func(t *testing.T) {
						baseline := runtime.NumGoroutine()
						ctx, cancel := context.WithTimeout(context.Background(), abortTestDeadline)
						defer cancel()

						bus := tr.newBus()
						if sc.cancelAfter > 0 {
							qctx, qcancel := context.WithCancel(ctx)
							ctx = qctx
							w := &cancelAfterBus{Bus: bus, cancel: qcancel}
							w.remaining.Store(sc.cancelAfter)
							bus = w
						}
						f := buildFixture(t, bus, 2, 3, 600, 1500, format.HWCName)
						f.eng.cfg.WorkerThreads = threads
						if sc.kill != "" {
							// A handful of messages in either direction puts the
							// endpoint mid-stream for every algorithm (Bloom
							// exchange, shuffle, or result return).
							f.eng.Bus().(netsim.FaultInjector).KillEndpointAfter(sc.kill, 4)
						}

						q := exampleQuery(t, f, 300, 400)
						start := time.Now()
						_, err := f.eng.RunCtx(ctx, q, alg)
						elapsed := time.Since(start)
						if err == nil {
							t.Fatalf("%s: query succeeded despite injected failure", sc.name)
						}
						if !errors.Is(err, sc.want) {
							t.Fatalf("%s: err = %v, want errors.Is %v", sc.name, err, sc.want)
						}
						if elapsed >= abortTestDeadline {
							t.Fatalf("%s: abort took %v; protocol stalled until the deadline", sc.name, elapsed)
						}
						if err := f.eng.Close(); err != nil {
							t.Logf("engine close after abort: %v", err)
						}
						checkNoGoroutineLeak(t, baseline)
					})
				}
			}
		}
	}
}

// TestEngineSurvivesAbortedQuery: the engine must stay usable — a later
// query on the same engine (different endpoints than the dead one would
// need) still runs. We cancel rather than kill so every endpoint stays up.
func TestEngineSurvivesAbortedQuery(t *testing.T) {
	bus := netsim.NewChanBus(64)
	w := &cancelAfterBus{Bus: bus}
	w.remaining.Store(6)
	f := buildFixture(t, w, 2, 3, 600, 1500, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)

	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	if _, err := f.eng.RunCtx(ctx, q, Zigzag); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query: err = %v", err)
	}
	res, err := f.eng.Run(q, Zigzag)
	if err != nil {
		t.Fatalf("query after aborted query: %v", err)
	}
	checkResult(t, res, want, Zigzag)
}

// TestHDFSNodeDeathMidScan covers the DataNode fault paths end to end: with
// replication 2 a node dying mid-scan is survived via replica failover and
// the result is exact; with every node armed to die the scan runs out of
// replicas and ErrNoLiveReplica surfaces, classified, at the facade.
func TestHDFSNodeDeathMidScan(t *testing.T) {
	t.Run("survived-with-live-replica", func(t *testing.T) {
		f := buildFixture(t, netsim.NewChanBus(256), 2, 3, 800, 2000, format.HWCName)
		defer f.eng.Close()
		want := reference(t, f, 300, 400)
		q := exampleQuery(t, f, 300, 400)
		// Node 0 serves two more block reads, then dies mid-scan; every one
		// of its blocks has a second replica (Replication: 2 in the fixture).
		if err := f.dfs.FailNodeAfterReads(0, 2); err != nil {
			t.Fatal(err)
		}
		res, err := f.eng.Run(q, Repartition)
		if err != nil {
			t.Fatalf("scan with one dead node and live replicas: %v", err)
		}
		checkResult(t, res, want, Repartition)
	})

	t.Run("reported-without-live-replica", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		f := buildFixture(t, netsim.NewChanBus(256), 2, 3, 800, 2000, format.HWCName)
		q := exampleQuery(t, f, 300, 400)
		// Every node dies after serving one block read: the scans' later
		// blocks have no live replica anywhere.
		for n := 0; n < f.dfs.NumDataNodes(); n++ {
			if err := f.dfs.FailNodeAfterReads(n, 1); err != nil {
				t.Fatal(err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), abortTestDeadline)
		defer cancel()
		_, err := f.eng.RunCtx(ctx, q, Repartition)
		if err == nil {
			t.Fatal("scan with all replicas dead succeeded")
		}
		if !errors.Is(err, hdfs.ErrNoLiveReplica) {
			t.Fatalf("err = %v, want errors.Is hdfs.ErrNoLiveReplica", err)
		}
		if err := f.eng.Close(); err != nil {
			t.Logf("engine close after abort: %v", err)
		}
		checkNoGoroutineLeak(t, baseline)
	})
}

// TestNoFailureCounterSnapshotStable guards the PR's core invariant: the
// abort machinery must not move a single counter on the no-failure path.
// Two identically-seeded engines run the full algorithm sweep (all eight
// algorithms plus the broadcast-relay variant, 9 runs each, 18 in total) and
// every per-run counter snapshot — recorder and bus byte/message counters —
// must be bit-identical between the two sweeps.
func TestNoFailureCounterSnapshotStable(t *testing.T) {
	type snap struct {
		Rec  map[string]int64
		Bus  map[string]int64
		Rows int
	}
	classes := []cluster.LinkClass{cluster.IntraDB, cluster.IntraHDFS, cluster.Cross}
	sweep := func() []snap {
		f := buildFixture(t, netsim.NewChanBus(256), 2, 3, 800, 2000, format.HWCName)
		defer f.eng.Close()
		q := exampleQuery(t, f, 300, 400)
		var out []snap
		run := func(alg Algorithm) {
			f.eng.Recorder().Reset()
			res, err := f.eng.Run(q, alg)
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			busSnap := map[string]int64{}
			for _, cl := range classes {
				busSnap["bytes."+cl.String()] = f.eng.Bus().Counters().Bytes(cl)
				busSnap["msgs."+cl.String()] = f.eng.Bus().Counters().Messages(cl)
			}
			out = append(out, snap{Rec: res.Metrics, Bus: busSnap, Rows: len(res.Rows)})
		}
		for _, alg := range Algorithms() {
			run(alg)
		}
		f.eng.cfg.BroadcastRelay = true
		run(Broadcast)
		return out
	}
	first, second := sweep(), sweep()
	if len(first) != 9 || len(second) != 9 {
		t.Fatalf("sweep sizes %d/%d, want 9 runs each", len(first), len(second))
	}
	for i := range first {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Errorf("run %d: counter snapshots differ between identically-seeded sweeps", i)
			for k, v := range second[i].Rec {
				if first[i].Rec[k] != v {
					t.Errorf("run %d recorder %s: %d vs %d", i, k, first[i].Rec[k], v)
				}
			}
			for k, v := range second[i].Bus {
				if first[i].Bus[k] != v {
					t.Errorf("run %d bus %s: %d vs %d", i, k, first[i].Bus[k], v)
				}
			}
		}
	}
}
