package core

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridwh/internal/catalog"
	"hybridwh/internal/edw"
	"hybridwh/internal/expr"
	"hybridwh/internal/format"
	"hybridwh/internal/hdfs"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/plan"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// The test fixture mirrors the paper's scenario at miniature scale:
// T(uniqKey bigint, joinKey int, corPred int, indPred int, tdate date) in
// the database, L(joinKey int, corPred int, indPred int, ldate date,
// grp varchar) on HDFS.

type fixture struct {
	eng   *Engine
	dfs   *hdfs.Cluster
	tRows []types.Row
	lRows []types.Row
	tSch  types.Schema
	lSch  types.Schema
}

func tSchema() types.Schema {
	return types.NewSchema(
		types.C("uniqKey", types.KindInt64),
		types.C("joinKey", types.KindInt32),
		types.C("corPred", types.KindInt32),
		types.C("indPred", types.KindInt32),
		types.C("tdate", types.KindDate),
	)
}

func lSchema() types.Schema {
	return types.NewSchema(
		types.C("joinKey", types.KindInt32),
		types.C("corPred", types.KindInt32),
		types.C("indPred", types.KindInt32),
		types.C("ldate", types.KindDate),
		types.C("grp", types.KindString),
	)
}

func buildFixture(t testing.TB, bus netsim.Bus, dbWorkers, jenWorkers, tN, lN int, fmtName string) *fixture {
	t.Helper()
	rec := metrics.New()
	rng := rand.New(rand.NewSource(77))

	db, err := edw.New(dbWorkers, rec)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("T", tSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// corPred is correlated with joinKey on both tables, as in the paper's
	// dataset: predicates on corPred restrict the key range, so join-key
	// selectivity differs from 1 and both Bloom filters have work to do.
	// T' keys form a prefix [0, tCor/5]; L' keys form the rotated window
	// {k : (k+60) mod 300 <= lCor/3}.
	var tRows []types.Row
	for i := 0; i < tN; i++ {
		jk := rng.Intn(200)
		tRows = append(tRows, types.Row{
			types.Int64(int64(i)),
			types.Int32(int32(jk)),                  // joinKey 0..199
			types.Int32(int32(jk*5 + rng.Intn(5))),  // corPred, key-correlated
			types.Int32(int32(rng.Intn(1000))),      // indPred
			types.Date(int32(16000 + rng.Intn(30))), // tdate
		})
	}
	if err := tbl.Load(tRows); err != nil {
		t.Fatal(err)
	}
	tbl.BuildStats(64)
	if err := tbl.CreateIndex("cor_ind_key", []int{2, 3, 1}); err != nil {
		t.Fatal(err)
	}

	dfs := hdfs.New(hdfs.Config{DataNodes: jenWorkers, DisksPerNode: 2, BlockSize: 8192, Replication: 2, Seed: 5})
	cat := catalog.New()
	var lRows []types.Row
	gen := func(emit func(types.Row) error) error {
		for i := 0; i < lN; i++ {
			jk := rng.Intn(300)
			row := types.Row{
				types.Int32(int32(jk)),                            // joinKey 0..299 (partial overlap)
				types.Int32(int32(((jk+60)%300)*3 + rng.Intn(3))), // corPred, key-correlated
				types.Int32(int32(rng.Intn(1000))),                // indPred
				types.Date(int32(16000 + rng.Intn(30))),           // ldate
				types.String(fmt.Sprintf("grp-%05d/page", rng.Intn(12))),
			}
			lRows = append(lRows, row)
			if err := emit(row); err != nil {
				return err
			}
		}
		return nil
	}
	if err := jen.CreateHDFSTable(dfs, cat, "L", "/hw/L", fmtName, lSchema(), 3, gen); err != nil {
		t.Fatal(err)
	}
	jc, err := jen.New(jen.Config{Workers: jenWorkers, Locality: true, BatchRows: 64}, dfs, cat, rec)
	if err != nil {
		t.Fatal(err)
	}
	// WorkerThreads pinned to 1: the fixture's tests assert bit-identical
	// counter snapshots, which only the single-threaded pipeline guarantees
	// on every host. Parallel tests raise it explicitly (parallel_test.go).
	eng, err := New(db, jc, bus, rec, Config{BloomBits: 1 << 14, BloomHashes: 2, BatchRows: 64, WorkerThreads: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{eng: eng, dfs: dfs, tRows: tRows, lRows: lRows, tSch: tSchema(), lSch: lSchema()}
}

// exampleQuery is the paper's query shape: local predicates both sides,
// equi-join, post-join date window, group-by with COUNT(*) and SUM.
func exampleQuery(t testing.TB, f *fixture, tCor, lCor int32) *plan.JoinQuery {
	t.Helper()
	reg := expr.NewRegistry()
	days, err := reg.Lookup("days")
	if err != nil {
		t.Fatal(err)
	}
	eg, err := reg.Lookup("extract_group")
	if err != nil {
		t.Fatal(err)
	}

	dbPred := expr.NewCmp(expr.LE, expr.NewCol(2, "corPred", types.KindInt32), expr.NewLit(types.Int32(tCor)))
	lPred := expr.NewCmp(expr.LE, expr.NewCol(1, "corPred", types.KindInt32), expr.NewLit(types.Int32(lCor)))

	// Combined layout: L wire (joinKey, ldate, grp) ++ T wire (joinKey, tdate).
	dLdate, _ := expr.NewCall(days, expr.NewCol(1, "ldate", types.KindDate))
	dTdate, _ := expr.NewCall(days, expr.NewCol(4, "tdate", types.KindDate))
	diff := expr.NewArith(expr.Sub, dTdate, dLdate)
	post := expr.NewAnd(
		expr.NewCmp(expr.GE, diff, expr.NewLit(types.Int64(0))),
		expr.NewCmp(expr.LE, diff, expr.NewLit(types.Int64(1))),
	)
	group, _ := expr.NewCall(eg, expr.NewCol(2, "grp", types.KindString))

	q, err := plan.NewBuilder("T", f.tSch, "L", f.lSch).
		DBPred(dbPred).
		HDFSPred(lPred).
		Join(1, 0).
		Ship([]int{1, 4}, []int{0, 3, 4}).
		PostJoin(post).
		GroupBy(group).
		Aggregates(
			relop.AggSpec{Kind: relop.AggCount, Name: "cnt"},
			relop.AggSpec{Kind: relop.AggSum, Input: diff, Name: "daysum"},
		).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// reference computes the query naively over the raw rows.
func reference(t testing.TB, f *fixture, tCor, lCor int32) map[int64][2]int64 {
	t.Helper()
	out := map[int64][2]int64{}
	byKey := map[int64][]types.Row{}
	for _, tr := range f.tRows {
		if tr[2].Int() <= int64(tCor) {
			byKey[tr[1].Int()] = append(byKey[tr[1].Int()], tr)
		}
	}
	for _, lr := range f.lRows {
		if lr[1].Int() > int64(lCor) {
			continue
		}
		for _, tr := range byKey[lr[0].Int()] {
			diff := tr[4].Int() - lr[3].Int()
			if diff < 0 || diff > 1 {
				continue
			}
			var gid int64
			if _, err := fmt.Sscanf(lr[4].Str(), "grp-%d/page", &gid); err != nil {
				t.Fatal(err)
			}
			acc := out[gid]
			acc[0]++
			acc[1] += diff
			out[gid] = acc
		}
	}
	return out
}

func checkResult(t *testing.T, res *Result, want map[int64][2]int64, alg Algorithm) {
	t.Helper()
	if len(res.Rows) != len(want) {
		t.Fatalf("%v: %d groups, want %d", alg, len(res.Rows), len(want))
	}
	for _, r := range res.Rows {
		gid := r[0].Int()
		w, ok := want[gid]
		if !ok {
			t.Fatalf("%v: unexpected group %d", alg, gid)
		}
		if r[1].Int() != w[0] || r[2].Int() != w[1] {
			t.Errorf("%v: group %d = (%d,%d), want (%d,%d)", alg, gid, r[1].Int(), r[2].Int(), w[0], w[1])
		}
	}
}

func TestAllAlgorithmsAgreeWithReference(t *testing.T) {
	for _, fmtName := range []string{format.HWCName, format.TextName} {
		t.Run(fmtName, func(t *testing.T) {
			f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 3000, 9000, fmtName)
			defer f.eng.Close()
			want := reference(t, f, 300, 400) // σT≈0.3, σL≈0.4
			if len(want) == 0 {
				t.Fatal("reference result empty; fixture too sparse")
			}
			q := exampleQuery(t, f, 300, 400)
			for _, alg := range Algorithms() {
				f.eng.Recorder().Reset()
				res, err := f.eng.Run(q, alg)
				if err != nil {
					t.Fatalf("%v: %v", alg, err)
				}
				checkResult(t, res, want, alg)
			}
		})
	}
}

func TestAlgorithmsAgreeOverTCP(t *testing.T) {
	f := buildFixture(t, netsim.NewTCPBus(256), 2, 3, 800, 2000, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 500, 500)
	q := exampleQuery(t, f, 500, 500)
	for _, alg := range []Algorithm{DBSideBloom, Zigzag} {
		f.eng.Recorder().Reset()
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("%v over TCP: %v", alg, err)
		}
		checkResult(t, res, want, alg)
	}
}

// TestBloomFiltersReduceMovement is the Table 1 shape: the Bloom filter
// variants must move strictly fewer tuples.
func TestBloomFiltersReduceMovement(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 3000, 9000, format.HWCName)
	defer f.eng.Close()
	// T' keys ≈ [0,120], L' keys ≈ [0,73] ∪ [240,299]: BF_DB prunes the L'
	// keys above 120, BF_H prunes the T' keys above 73.
	q := exampleQuery(t, f, 600, 400)

	shuffle := map[Algorithm]int64{}
	dbSent := map[Algorithm]int64{}
	for _, alg := range []Algorithm{Repartition, RepartitionBloom, Zigzag} {
		f.eng.Recorder().Reset()
		if _, err := f.eng.Run(q, alg); err != nil {
			t.Fatal(err)
		}
		shuffle[alg] = f.eng.Recorder().Get(metrics.JENShuffleTuples)
		dbSent[alg] = f.eng.Recorder().Get(metrics.DBSentTuples)
	}
	if !(shuffle[RepartitionBloom] < shuffle[Repartition]) {
		t.Errorf("BF did not reduce shuffle: %d vs %d", shuffle[RepartitionBloom], shuffle[Repartition])
	}
	if !(shuffle[Zigzag] <= shuffle[RepartitionBloom]+shuffle[RepartitionBloom]/10) {
		t.Errorf("zigzag shuffle %d should match repartition(BF) %d", shuffle[Zigzag], shuffle[RepartitionBloom])
	}
	if !(dbSent[Zigzag] < dbSent[Repartition]) {
		t.Errorf("BF_H did not reduce DB transfer: %d vs %d", dbSent[Zigzag], dbSent[Repartition])
	}
	// DB-side join with/without BF: fewer tuples shipped into the DB.
	hdfsSent := map[Algorithm]int64{}
	for _, alg := range []Algorithm{DBSide, DBSideBloom} {
		f.eng.Recorder().Reset()
		if _, err := f.eng.Run(q, alg); err != nil {
			t.Fatal(err)
		}
		hdfsSent[alg] = f.eng.Recorder().Get(metrics.HDFSSentTuples)
	}
	if !(hdfsSent[DBSideBloom] < hdfsSent[DBSide]) {
		t.Errorf("BF did not reduce ingest: %d vs %d", hdfsSent[DBSideBloom], hdfsSent[DBSide])
	}
}

// TestDBSideStrategies forces each DB-side join strategy and checks results
// agree.
func TestDBSideStrategies(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 3000, 9000, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 300, 400)
	base := exampleQuery(t, f, 300, 400)

	// Strategy is chosen from estimates; steer it with the cardinality hint.
	hints := map[string]int64{
		"repartition-both":   0, // catalog rows (large both sides)
		"broadcast-ingested": 1, // tiny L' estimate
	}
	for name, hint := range hints {
		q := *base
		q.HDFSCardHint = hint
		res, err := f.eng.Run(&q, DBSide)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkResult(t, res, want, DBSide)
	}
}

func TestRunValidatesQuery(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(64), 2, 2, 100, 200, format.HWCName)
	defer f.eng.Close()
	bad := &plan.JoinQuery{}
	if _, err := f.eng.Run(bad, Zigzag); err == nil {
		t.Error("invalid query: want error")
	}
	q := exampleQuery(t, f, 300, 400)
	if _, err := f.eng.Run(q, Algorithm(42)); err == nil {
		t.Error("unknown algorithm: want error")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range append(Algorithms(), Algorithm(42)) {
		if a.String() == "" {
			t.Errorf("Algorithm(%d).String() empty", a)
		}
	}
	if Zigzag.String() != "zigzag" || RepartitionBloom.String() != "repartition(BF)" {
		t.Error("algorithm names drifted from the paper's labels")
	}
}

func TestEngineRequiresComponents(t *testing.T) {
	if _, err := New(nil, nil, nil, nil, Config{}); err == nil {
		t.Error("nil components: want error")
	}
}

func TestEmptyResultSets(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(64), 2, 3, 500, 1500, format.HWCName)
	defer f.eng.Close()
	// Impossible predicate on T: no group survives anywhere.
	q := exampleQuery(t, f, -1, 400)
	for _, alg := range Algorithms() {
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("%v: %d rows from an empty join", alg, len(res.Rows))
		}
	}
}

func TestSingleWorkerEachSide(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(64), 1, 1, 500, 1500, format.TextName)
	defer f.eng.Close()
	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)
	for _, alg := range Algorithms() {
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkResult(t, res, want, alg)
	}
}

func TestMoreDBWorkersThanJENWorkers(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(64), 6, 3, 1000, 2000, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)
	for _, alg := range []Algorithm{DBSideBloom, Zigzag, Broadcast} {
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		checkResult(t, res, want, alg)
	}
}
