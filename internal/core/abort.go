package core

import (
	"context"
	"errors"
	"fmt"

	"hybridwh/internal/hdfs"
	"hybridwh/internal/netsim"
)

// The distributed abort protocol. A worker program that fails mid-query must
// not leave its peers counting EOS markers that will never arrive: instead
// of completing its streams with data + MsgEOS, it broadcasts MsgError on
// them, and every receive loop treats an incoming MsgError as a terminal,
// classified error. Teardown is belt-and-braces: the MsgError fails the
// streams fast, and the per-query context (canceled by par.WithContext when
// any program errors) unblocks receives on streams the failing worker never
// reached. The no-failure path is untouched — MsgError is never sent and the
// extra MsgError route never fires, so counters stay bit-identical.

// ErrRemoteAbort classifies errors produced by an incoming MsgError: a peer
// worker failed and aborted the stream. The failing worker's own error
// classification (ErrNoLiveReplica, ErrEndpointDown, cancellation) travels
// inside the MsgError payload and is re-wrapped on receipt, so errors.Is
// sees the root cause at every worker and at the facade.
var ErrRemoteAbort = errors.New("core: stream aborted by remote worker")

// Abort payload: one kind byte classifying the root cause, then the error
// text. The kind re-attaches the matching sentinel on the receiving side,
// keeping errors.Is classification intact across the wire.
const (
	abortGeneric byte = iota
	abortEndpointDown
	abortNoLiveReplica
	abortCanceled
	abortDeadline
)

// encodeAbort builds a MsgError payload from the failing worker's error.
func encodeAbort(err error) []byte {
	kind := abortGeneric
	switch {
	case errors.Is(err, netsim.ErrEndpointDown):
		kind = abortEndpointDown
	case errors.Is(err, hdfs.ErrNoLiveReplica):
		kind = abortNoLiveReplica
	case errors.Is(err, context.DeadlineExceeded):
		kind = abortDeadline
	case errors.Is(err, context.Canceled):
		kind = abortCanceled
	}
	msg := err.Error()
	out := make([]byte, 0, 1+len(msg))
	out = append(out, kind)
	return append(out, msg...)
}

// decodeAbort turns a received MsgError envelope into the terminal error the
// receive loop reports: wrapped in ErrRemoteAbort plus the root-cause
// sentinel the payload carries.
func decodeAbort(at, stream string, env netsim.Envelope) error {
	kind, msg := abortGeneric, ""
	if len(env.Payload) > 0 {
		kind, msg = env.Payload[0], string(env.Payload[1:])
	}
	var cause error
	switch kind {
	case abortEndpointDown:
		cause = netsim.ErrEndpointDown
	case abortNoLiveReplica:
		cause = hdfs.ErrNoLiveReplica
	case abortDeadline:
		cause = context.DeadlineExceeded
	case abortCanceled:
		cause = context.Canceled
	}
	if cause == nil {
		return fmt.Errorf("core: %s stream %s: %w by %s: %s", at, stream, ErrRemoteAbort, env.From, msg)
	}
	return fmt.Errorf("core: %s stream %s: %w by %s: %s: %w", at, stream, ErrRemoteAbort, env.From, msg, cause)
}

// sendAbort broadcasts MsgError on a stream to every destination — the
// failing sender's protocol obligation in place of its data + EOS. Send
// failures are reported but secondary: a dead endpoint cannot abort its
// streams, and the context teardown covers for it.
func (e *Engine) sendAbort(from, stream string, cause error, dests []string) error {
	payload := encodeAbort(cause)
	var firstE error
	for _, d := range dests {
		if err := e.bus.Send(from, d, netsim.Msg{Type: netsim.MsgError, Stream: stream, Payload: payload}); err != nil && firstE == nil {
			firstE = err
		}
	}
	return firstE
}

// ctxAbort is what a receive loop returns when the per-query context is
// canceled under it: the cancellation cause (the first failing program's
// error, or the caller's Canceled/DeadlineExceeded), located at the waiting
// endpoint.
func ctxAbort(ctx context.Context, at, stream string) error {
	return fmt.Errorf("core: %s recv %s: %w", at, stream, context.Cause(ctx))
}

// prog is the failure harness of one worker program: a program-scoped
// context that the program aborts at its first terminal error. Receives
// inside the program run under prog.ctx, so the moment the program fails —
// even when its own endpoint is dead and MsgError cannot be broadcast — its
// collective steps (shuffle receivers, filter fan-ins, aggregation fan-ins)
// unblock immediately instead of waiting for stream completions that will
// never come. The program then returns, which cancels the per-query context
// and tears down its peers. Without this, a worker whose endpoint died could
// deadlock the whole query: unable to send MsgError, unable to return
// (blocked in its own receives), and therefore unable to trigger the
// context teardown that every other blocked worker is waiting for.
type prog struct {
	ctx    context.Context
	cancel context.CancelCauseFunc
	err    *error // the program's first-error slot; main goroutine only
}

// newProg derives the program context. Call release when the program ends.
func newProg(ctx context.Context, runErr *error) *prog {
	c, cancel := context.WithCancelCause(ctx)
	return &prog{ctx: c, cancel: cancel, err: runErr}
}

// fail records err as the program's first error (like firstErr) and aborts
// the program context. Call only from the program's main goroutine.
func (p *prog) fail(err error) {
	if err == nil {
		return
	}
	if *p.err == nil {
		*p.err = err
	}
	p.cancel(*p.err)
}

// bgFail aborts the program context without touching the first-error slot;
// for background receiver goroutines, whose errors are collected by their
// group's Wait on the main goroutine.
func (p *prog) bgFail(err error) {
	if err != nil {
		p.cancel(err)
	}
}

// release frees the program context's resources; defer it at program start.
func (p *prog) release() { p.cancel(nil) }
