package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"hybridwh/internal/batch"
	"hybridwh/internal/cluster"
	"hybridwh/internal/edw"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/par"
	"hybridwh/internal/plan"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// SemiJoin is the classic exact two-way semijoin baseline the literature
// contrasts Bloom joins against (the paper cites Mullin's semijoins and
// PERF join as the predecessors): the same dataflow as the zigzag join, but
// exchanging exact join-key sets instead of Bloom filters. No false
// positives, but the key sets are far larger than 16 MB Bloom filters, so
// the cross-cluster filter exchange costs more — the trade-off the paper's
// Section 6 discusses. Implemented as an extension for ablation studies; it
// is not one of the paper's evaluated algorithms.
const SemiJoin Algorithm = 100

// keySet is an exact join-key membership filter.
type keySet map[int64]struct{}

// TestKey implements jen.KeyFilter.
func (s keySet) TestKey(k int64) bool {
	_, ok := s[k]
	return ok
}

// marshalKeySet encodes the set as sorted varint deltas.
func marshalKeySet(s keySet) []byte {
	keys := make([]int64, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf := binary.AppendUvarint(nil, uint64(len(keys)))
	prev := int64(0)
	for i, k := range keys {
		if i == 0 {
			buf = binary.AppendVarint(buf, k)
		} else {
			buf = binary.AppendUvarint(buf, uint64(k-prev))
		}
		prev = k
	}
	return buf
}

func unmarshalKeySet(b []byte) (keySet, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("core: truncated key set")
	}
	b = b[sz:]
	out := make(keySet, n)
	var prev int64
	for i := uint64(0); i < n; i++ {
		if i == 0 {
			v, sz := binary.Varint(b)
			if sz <= 0 {
				return nil, fmt.Errorf("core: truncated key set")
			}
			prev = v
			b = b[sz:]
		} else {
			d, sz := binary.Uvarint(b)
			if sz <= 0 {
				return nil, fmt.Errorf("core: truncated key set")
			}
			prev += int64(d)
			b = b[sz:]
		}
		out[prev] = struct{}{}
	}
	return out, nil
}

// sendKeySet ships a key set, accounting its bytes like the Bloom filters
// (they play the same role in the dataflow).
func (e *Engine) sendKeySet(from, stream string, s keySet, dests []string) error {
	payload := marshalKeySet(s)
	for _, d := range dests {
		e.rec.Add(metrics.BloomBytes, int64(len(payload)))
		if err := e.bus.Send(from, d, netsim.Msg{Type: netsim.MsgControl, Stream: stream, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// recvKeySets receives and unions `parts` key sets. Failure semantics match
// recvBloom: a bad part is recorded and the fan-in keeps draining; MsgError
// and context cancellation are terminal.
func (e *Engine) recvKeySets(ctx context.Context, at, stream string, parts int) (keySet, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return nil, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return nil, err
	}
	defer r.Unroute(netsim.MsgControl, stream)
	defer r.Unroute(netsim.MsgError, stream)
	out := keySet{}
	var consumeErr error
	for i := 0; i < parts; i++ {
		select {
		case env := <-ch:
			if consumeErr != nil {
				continue // already failed; keep draining the protocol
			}
			s, err := unmarshalKeySet(env.Payload)
			if err != nil {
				consumeErr = fmt.Errorf("core: %s key set %s from %s: %w", at, stream, env.From, err)
				continue
			}
			for k := range s {
				out[k] = struct{}{}
			}
		case env := <-abort:
			return nil, decodeAbort(at, stream, env)
		case <-ctx.Done():
			return nil, ctxAbort(ctx, at, stream)
		}
	}
	if consumeErr != nil {
		return nil, consumeErr
	}
	return out, nil
}

// runSemiJoin executes the exact semijoin: the zigzag dataflow with key
// sets in place of Bloom filters.
func (e *Engine) runSemiJoin(ctx context.Context, qs string, q *plan.JoinQuery) (*Result, error) {
	n, m := e.jen.Workers(), e.db.Workers()
	tbl, err := e.db.Table(q.DBTable)
	if err != nil {
		return nil, err
	}
	scanPlan, err := e.jen.PlanScan(q.HDFSTable)
	if err != nil {
		return nil, err
	}
	need := append(append([]int(nil), q.DBProj...), colSet(q.DBPred)...)
	accessPlan := e.db.PlanAccess(tbl, q.DBPred, need)

	// Exact T' key set to every JEN worker (blocking, like BF_DB).
	tKeys, err := e.db.BuildKeySet(tbl, q.DBPred, q.DBJoinColBase)
	if err != nil {
		return nil, err
	}
	set := make(keySet, len(tKeys))
	for _, k := range tKeys {
		set[k] = struct{}{}
	}
	if err := e.sendKeySet(dbName(0), qs+"tkeys", set, e.jenNames()); err != nil {
		return nil, err
	}

	g, ctx := par.WithContext(ctx)
	var resultRows []types.Row
	g.Go(func() error {
		rows, err := e.collectRows(ctx, dbName(0), qs+"final", 1)
		resultRows = rows
		return err
	})

	for i := 0; i < m; i++ {
		i := i
		g.Go(func() error { return e.dbSemiProgram(ctx, qs, q, tbl, accessPlan, i, n) })
	}
	for w := 0; w < n; w++ {
		w := w
		g.Go(func() error { return e.jenSemiProgram(ctx, qs, q, scanPlan, w, n, m) })
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &Result{Rows: resultRows}, nil
}

// dbSemiProgram mirrors dbShipProgram with an exact L'-key set instead of
// BF_H.
func (e *Engine) dbSemiProgram(ctx context.Context, qs string, q *plan.JoinQuery, tbl *edw.Table, ap edw.AccessPlan, i, n int) error {
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx
	tw, err := e.db.FilterProject(tbl, i, ap, q.DBProj)
	pr.fail(err)
	lKeys, kerr := e.recvKeySets(ctx, dbName(i), qs+"lkeys", 1)
	pr.fail(kerr)
	if runErr == nil {
		kept := tw[:0:0]
		for _, row := range tw {
			if lKeys.TestKey(row[q.DBWireKey].Int()) {
				kept = append(kept, row)
			}
		}
		tw = kept
	}
	b := e.newBatcher(ctx, dbName(i), qs+"dbrows", e.jenNames(), metrics.DBSentTuples, metrics.DBSentBytes, i)
	if runErr == nil {
		pr.fail(b.scatterRows(tw, q.DBWireKey, func(key int64) string {
			return jenName(cluster.PartitionFor(key, n))
		}))
	}
	pr.fail(b.CloseWith(runErr))
	return runErr
}

// jenSemiProgram mirrors jenRepartitionProgram in zigzag mode with exact
// key sets.
func (e *Engine) jenSemiProgram(ctx context.Context, qs string, q *plan.JoinQuery, scanPlan *jen.ScanPlan, w, n, m int) error {
	me := jenName(w)
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx

	tKeys, err := e.recvKeySets(ctx, me, qs+"tkeys", 1)
	pr.fail(err)

	bud := e.budget(qs)
	ht, err := e.newJoinTable(qs, q.HDFSWireKey)
	if err != nil {
		pr.fail(err)
		ht = relop.NewMemJoinTable(q.HDFSWireKey)
	}
	defer ht.Close()
	var dbBatches []*batch.Batch
	var probeTuples int64
	var bg par.Group
	bg.Go(func() error {
		var recv int64
		err := e.recvBatches(ctx, me, qs+"shuffle", n, func(b *batch.Batch) error {
			recv += int64(b.Len())
			return ht.InsertBatch(b)
		})
		e.rec.AddAt(metrics.JENRecvTuples, w, recv)
		pr.bgFail(err)
		return err
	})
	bg.Go(func() error {
		bs, tuples, err := e.collectBatches(ctx, me, qs+"dbrows", m)
		dbBatches, probeTuples = bs, tuples
		pr.bgFail(err)
		return err
	})

	localKeys := keySet{}
	b := e.newBatcher(ctx, me, qs+"shuffle", e.jenNames(), metrics.JENShuffleTuples, metrics.JENShuffleBytes, w)
	scanKey := q.HDFSWire[q.HDFSWireKey]
	if runErr == nil {
		err := e.jen.ScanFilterBatches(jen.ScanSpec{
			Plan: scanPlan, Worker: w,
			Proj: q.HDFSScanProj, Pred: q.HDFSPred, Pruner: q.Pruner(),
			DBFilter: tKeys, BloomKeyIdx: scanKey,
			Mem: bud,
		}, func(sb *batch.Batch) error {
			// The exact-semijoin analogue of BF_H construction: collect the
			// surviving join keys while the batch streams past.
			keys := sb.Col(scanKey)
			_ = sb.Each(func(i int) error {
				localKeys[keys[i].Int()] = struct{}{}
				return nil
			})
			return b.scatterBatch(sb, q.HDFSWire, scanKey, func(key int64) string {
				return jenName(cluster.PartitionFor(key, n))
			})
		})
		pr.fail(err)
	}
	pr.fail(b.CloseWith(runErr))

	// The (possibly partial) key set still completes the fan-in on the error
	// path; the failure itself travels via MsgError and the context.
	desig := e.jen.DesignatedWorker()
	pr.fail(e.sendKeySet(me, qs+"lkeyslocal", localKeys, []string{jenName(desig)}))
	if w == desig {
		global, err := e.recvKeySets(ctx, me, qs+"lkeyslocal", n)
		pr.fail(err)
		if global == nil {
			global = keySet{}
		}
		pr.fail(e.sendKeySet(me, qs+"lkeys", global, e.dbNames()))
	}

	pr.fail(bg.Wait())
	pr.fail(ht.FinishBuild())
	e.rec.AddAt(metrics.JoinBuildTuples, w, ht.Len())
	e.rec.AddAt(metrics.JoinProbeTuples, w, probeTuples)

	charged := chargeBatches(bud, dbBatches)
	defer bud.Release(charged)

	agg := relop.NewHashAgg(q.GroupBy, q.Aggs)
	agg.SetBudget(bud)
	defer func() { bud.Release(agg.MemBytes()) }()
	if runErr == nil {
		pr.fail(e.probeAndAggregateBatches(ht, dbBatches, q, agg, e.cfg.WorkerThreads))
	}
	e.recordSpillStats(ht, w)
	return e.finishHDFSAggregation(ctx, qs, q, agg, w, n, runErr)
}
