package core

import (
	"context"
	"fmt"

	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
	"hybridwh/internal/skew"
)

// Skew-resilient shuffle (Config.SkewThreshold): the repartition and zigzag
// joins detect heavy-hitter join keys during the HDFS scan and give them
// hybrid treatment instead of the agreed hash. The handshake piggybacks on
// the zigzag BF_H shape:
//
//  1. Each JEN worker builds a skew.Sketch over its surviving L' keys while
//     scanning (jen.ScanSpec.BuildSketch), buffering the wire-projected
//     batches locally instead of shuffling them.
//  2. The local sketches fan in to the designated worker (MsgControl,
//     stream "sketch"), which merges them, derives the hot set at
//     SkewThreshold, and broadcasts it to every JEN and DB worker
//     (stream "hotset").
//  3. Each JEN worker shuffles its buffered L' through a skew.Partitioner:
//     cold keys to their hash home, hot keys round-robin. Each DB worker
//     ships T' with hot rows replicated to all JEN workers and cold rows
//     hashed.
//
// Exactness: both sides route by the same agreed hot set, so every hot
// (t, l) pair meets on exactly one worker — the one the l row scattered to,
// where the t row was replicated — and every cold pair meets at the key's
// hash home, exactly as before. The sketch only nominates the set; its
// approximation can never duplicate or drop results.
//
// The price is pipeline overlap: L' cannot leave until the hot set exists,
// which is after the whole scan, so the skew path behaves like zigzag's
// sequential tail. Worth it exactly when one key would otherwise serialize
// the join on a single worker.

// skewOn reports whether the skew-resilient shuffle is active. Row mode
// keeps the seed's single-pass pipeline untouched.
func (e *Engine) skewOn() bool { return e.cfg.SkewThreshold > 0 && !e.cfg.RowAtATime }

// sendSketch ships a marshalled sketch, accounting its bytes like the Bloom
// filters and key sets that travel the same fan-in lanes.
func (e *Engine) sendSketch(from, stream string, sk *skew.Sketch, dests []string) error {
	payload := sk.Marshal()
	for _, d := range dests {
		e.rec.Add(metrics.SkewBytes, int64(len(payload)))
		if err := e.bus.Send(from, d, netsim.Msg{Type: netsim.MsgControl, Stream: stream, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// recvSketches receives and merges `parts` sketches. Failure semantics
// match recvKeySets: a bad part is recorded and the fan-in keeps draining;
// MsgError and context cancellation are terminal.
func (e *Engine) recvSketches(ctx context.Context, at, stream string, parts int) (*skew.Sketch, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return nil, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return nil, err
	}
	defer r.Unroute(netsim.MsgControl, stream)
	defer r.Unroute(netsim.MsgError, stream)
	out := skew.NewSketch(e.cfg.SkewSketchKeys)
	var consumeErr error
	for i := 0; i < parts; i++ {
		select {
		case env := <-ch:
			if consumeErr != nil {
				continue // already failed; keep draining the protocol
			}
			sk, err := skew.UnmarshalSketch(env.Payload)
			if err != nil {
				consumeErr = fmt.Errorf("core: %s sketch %s from %s: %w", at, stream, env.From, err)
				continue
			}
			out.Merge(sk)
		case env := <-abort:
			return nil, decodeAbort(at, stream, env)
		case <-ctx.Done():
			return nil, ctxAbort(ctx, at, stream)
		}
	}
	if consumeErr != nil {
		return nil, consumeErr
	}
	return out, nil
}

// sendHotSet broadcasts the agreed hot set.
func (e *Engine) sendHotSet(from, stream string, hot *skew.HotSet, dests []string) error {
	payload := hot.Marshal()
	for _, d := range dests {
		e.rec.Add(metrics.SkewBytes, int64(len(payload)))
		if err := e.bus.Send(from, d, netsim.Msg{Type: netsim.MsgControl, Stream: stream, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// recvHotSet receives the agreed hot set (one part, from the designated
// worker).
func (e *Engine) recvHotSet(ctx context.Context, at, stream string) (*skew.HotSet, error) {
	r := e.routers[at]
	ch, err := r.Route(netsim.MsgControl, stream)
	if err != nil {
		return nil, err
	}
	abort, err := r.Route(netsim.MsgError, stream)
	if err != nil {
		r.Unroute(netsim.MsgControl, stream)
		return nil, err
	}
	defer r.Unroute(netsim.MsgControl, stream)
	defer r.Unroute(netsim.MsgError, stream)
	select {
	case env := <-ch:
		hot, err := skew.UnmarshalHotSet(env.Payload)
		if err != nil {
			return nil, fmt.Errorf("core: %s hot set %s from %s: %w", at, stream, env.From, err)
		}
		return hot, nil
	case env := <-abort:
		return nil, decodeAbort(at, stream, env)
	case <-ctx.Done():
		return nil, ctxAbort(ctx, at, stream)
	}
}

// agreeHotSet runs the JEN side of the hot-set agreement after the scan:
// send this worker's (possibly empty) sketch to the designated worker; the
// designated worker merges all n, derives the hot set, and broadcasts it to
// every JEN and DB worker; everyone receives the agreed set. Like the
// zigzag BF_H fan-in, the sends happen even when the caller is already
// failing so no peer blocks on a fan-in that will never complete — the
// query's failure travels via MsgError and the context.
func (e *Engine) agreeHotSet(ctx context.Context, qs, me string, w, n int, sk *skew.Sketch) (*skew.HotSet, error) {
	if sk == nil {
		sk = skew.NewSketch(e.cfg.SkewSketchKeys)
	}
	var runErr error
	desig := e.jen.DesignatedWorker()
	firstErr(&runErr, e.sendSketch(me, qs+"sketch", sk, []string{jenName(desig)}))
	if w == desig {
		global, err := e.recvSketches(ctx, me, qs+"sketch", n)
		firstErr(&runErr, err)
		if global == nil {
			global = skew.NewSketch(e.cfg.SkewSketchKeys)
		}
		hot := skew.NewHotSet(global.Hot(e.cfg.SkewThreshold))
		e.rec.Add(metrics.SkewHotKeys, int64(hot.Len()))
		e.rec.Add(metrics.SkewHotPermille, int64(global.HottestShare()*1000))
		firstErr(&runErr, e.sendHotSet(me, qs+"hotset", hot, append(e.jenNames(), e.dbNames()...)))
	}
	hot, err := e.recvHotSet(ctx, me, qs+"hotset")
	firstErr(&runErr, err)
	return hot, runErr
}
