package core

import (
	"strings"
	"testing"
)

func TestAdviseMatchesPaperRegions(t *testing.T) {
	base := AdviceStats{TRows: 1_600_000_000, LRows: 15_000_000_000}

	// σT ≤ 0.001 → broadcast (T' ≈ 25 MB at 16 B/row).
	s := base
	s.SigmaT, s.SigmaL = 0.001, 0.2
	if a := Advise(s, 1); a.Algorithm != Broadcast {
		t.Errorf("tiny T': got %v (%s)", a.Algorithm, a.Reason)
	}

	// Very selective σL → DB-side with Bloom filter.
	s = base
	s.SigmaT, s.SigmaL = 0.1, 0.001
	if a := Advise(s, 1); a.Algorithm != DBSideBloom {
		t.Errorf("tiny L': got %v (%s)", a.Algorithm, a.Reason)
	}
	s.SigmaL = 0.01
	if a := Advise(s, 1); a.Algorithm != DBSideBloom {
		t.Errorf("σL=0.01 boundary: got %v", a.Algorithm)
	}

	// The common case → zigzag.
	s = base
	s.SigmaT, s.SigmaL = 0.1, 0.2
	a := Advise(s, 1)
	if a.Algorithm != Zigzag {
		t.Errorf("common case: got %v (%s)", a.Algorithm, a.Reason)
	}
	if !strings.Contains(a.Reason, "robust") {
		t.Errorf("reason should explain robustness: %q", a.Reason)
	}

	// Broadcast takes precedence over DB-side when both sides are tiny
	// (no shuffle at all beats shipping anything).
	s = base
	s.SigmaT, s.SigmaL = 0.0005, 0.001
	if a := Advise(s, 1); a.Algorithm != Broadcast {
		t.Errorf("both tiny: got %v", a.Algorithm)
	}

	// Scaled-down stats with scale factor reach the same decision.
	s = AdviceStats{TRows: 1_600_000, LRows: 15_000_000, SigmaT: 0.001, SigmaL: 0.2}
	if a := Advise(s, 1000); a.Algorithm != Broadcast {
		t.Errorf("scaled stats: got %v", a.Algorithm)
	}
	// Degenerate inputs still decide something sane.
	if a := Advise(AdviceStats{}, 0); a.Algorithm != Zigzag {
		t.Errorf("zero stats: got %v", a.Algorithm)
	}
}

// TestAdviseZeroTPrimeBroadcasts is the regression test for the zero-T'
// edge: when the statistics say the T predicates filter *everything*
// (σ_T = 0 with a known table), the old `tPrimeBytes > 0` guard skipped the
// broadcast rule and routed the query into a pointless full zigzag — scan,
// Bloom exchange and shuffle for a join the estimate already knows is empty.
// An estimated-empty T' is the cheapest possible broadcast, not a reason to
// shuffle. Only a genuinely unknown table (TRows == 0) should skip the rule.
func TestAdviseZeroTPrimeBroadcasts(t *testing.T) {
	s := AdviceStats{TRows: 1_600_000_000, LRows: 15_000_000_000, SigmaT: 0, SigmaL: 0.2}
	a := Advise(s, 1)
	if a.Algorithm != Broadcast {
		t.Fatalf("σ_T=0: got %v (%s), want Broadcast", a.Algorithm, a.Reason)
	}
	// Unknown table: no statistics at all, the rule must not fire on a
	// fabricated zero estimate.
	if a := Advise(AdviceStats{TRows: 0, LRows: 15_000_000_000, SigmaL: 0.2}, 1); a.Algorithm != Zigzag {
		t.Errorf("unknown T: got %v, want Zigzag", a.Algorithm)
	}
}

// TestAdviseSkewFlipsAlgorithm: the same workload that normally gets the
// zigzag join flips to broadcast when one join key dominates L' and the
// skew-resilient shuffle is off — and flips back once the engine handles
// the skew itself.
func TestAdviseSkewFlipsAlgorithm(t *testing.T) {
	// T' ≈ 128 MB: too big for the uniform-case broadcast threshold (25 MB)
	// but within the skew escape hatch's 200 MB ceiling; σL keeps the
	// DB-side join out.
	base := AdviceStats{
		TRows: 1_600_000_000, LRows: 15_000_000_000,
		SigmaT: 0.005, SigmaL: 0.2, JENWorkers: 30,
	}
	if a := Advise(base, 1); a.Algorithm != Zigzag {
		t.Fatalf("uniform baseline: got %v (%s)", a.Algorithm, a.Reason)
	}

	skewed := base
	skewed.HotKeyShare = 0.5
	a := Advise(skewed, 1)
	if a.Algorithm != Broadcast {
		t.Errorf("unhandled skew: got %v (%s), want Broadcast", a.Algorithm, a.Reason)
	}
	if !strings.Contains(a.Reason, "skew") {
		t.Errorf("reason should explain the skew escape: %q", a.Reason)
	}

	// The engine's hybrid shuffle neutralizes the hot key: back to zigzag.
	handled := skewed
	handled.SkewHandled = true
	if a := Advise(handled, 1); a.Algorithm != Zigzag {
		t.Errorf("handled skew: got %v (%s), want Zigzag", a.Algorithm, a.Reason)
	}

	// Mild skew (below the share threshold) never flips.
	mild := base
	mild.HotKeyShare = 0.05
	if a := Advise(mild, 1); a.Algorithm != Zigzag {
		t.Errorf("mild skew: got %v", a.Algorithm)
	}

	// Unknown worker count: skew reasoning is skipped.
	unknown := skewed
	unknown.JENWorkers = 0
	if a := Advise(unknown, 1); a.Algorithm != Zigzag {
		t.Errorf("unknown topology: got %v", a.Algorithm)
	}

	// A T' too wide to replicate stays with the shuffle even under skew.
	huge := skewed
	huge.SigmaT = 0.1
	if a := Advise(huge, 1); a.Algorithm != Zigzag {
		t.Errorf("huge T' under skew: got %v", a.Algorithm)
	}
}
