package core

import (
	"strings"
	"testing"
)

func TestAdviseMatchesPaperRegions(t *testing.T) {
	base := AdviceStats{TRows: 1_600_000_000, LRows: 15_000_000_000}

	// σT ≤ 0.001 → broadcast (T' ≈ 25 MB at 16 B/row).
	s := base
	s.SigmaT, s.SigmaL = 0.001, 0.2
	if a := Advise(s, 1); a.Algorithm != Broadcast {
		t.Errorf("tiny T': got %v (%s)", a.Algorithm, a.Reason)
	}

	// Very selective σL → DB-side with Bloom filter.
	s = base
	s.SigmaT, s.SigmaL = 0.1, 0.001
	if a := Advise(s, 1); a.Algorithm != DBSideBloom {
		t.Errorf("tiny L': got %v (%s)", a.Algorithm, a.Reason)
	}
	s.SigmaL = 0.01
	if a := Advise(s, 1); a.Algorithm != DBSideBloom {
		t.Errorf("σL=0.01 boundary: got %v", a.Algorithm)
	}

	// The common case → zigzag.
	s = base
	s.SigmaT, s.SigmaL = 0.1, 0.2
	a := Advise(s, 1)
	if a.Algorithm != Zigzag {
		t.Errorf("common case: got %v (%s)", a.Algorithm, a.Reason)
	}
	if !strings.Contains(a.Reason, "robust") {
		t.Errorf("reason should explain robustness: %q", a.Reason)
	}

	// Broadcast takes precedence over DB-side when both sides are tiny
	// (no shuffle at all beats shipping anything).
	s = base
	s.SigmaT, s.SigmaL = 0.0005, 0.001
	if a := Advise(s, 1); a.Algorithm != Broadcast {
		t.Errorf("both tiny: got %v", a.Algorithm)
	}

	// Scaled-down stats with scale factor reach the same decision.
	s = AdviceStats{TRows: 1_600_000, LRows: 15_000_000, SigmaT: 0.001, SigmaL: 0.2}
	if a := Advise(s, 1000); a.Algorithm != Broadcast {
		t.Errorf("scaled stats: got %v", a.Algorithm)
	}
	// Degenerate inputs still decide something sane.
	if a := Advise(AdviceStats{}, 0); a.Algorithm != Zigzag {
		t.Errorf("zero stats: got %v", a.Algorithm)
	}
}
