package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"hybridwh/internal/costmodel"
	"hybridwh/internal/format"
	"hybridwh/internal/mem"
	"hybridwh/internal/netsim"
	"hybridwh/internal/sched"
)

// BenchmarkConcurrentMixed measures concurrent serving: 64 clients — three
// scans (repartition) to one point lookup (DB-side Bloom) — submitted
// through the admission scheduler against a shared global memory budget.
// rows/s is aggregate scanned input rows per second across all clients;
// p99-ms is the 99th-percentile submit-to-completion latency (queueing
// included), the number the process-list user actually feels.
func BenchmarkConcurrentMixed(b *testing.B) {
	const tN, lN = 3000, 10_000
	const clients = 64
	f := buildFixture(b, netsim.NewChanBus(256), 4, 6, tN, lN, format.HWCName)
	defer f.eng.Close()
	q := exampleQuery(b, f, 300, 400)

	s, err := sched.New(sched.Config{
		MemBudgetBytes: 8 << 20, MaxConcurrent: 4, MinGrantBytes: 1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	var mu sync.Mutex
	lats := make([]time.Duration, 0, clients*b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs := make([]*sched.Proc, clients)
		for c := 0; c < clients; c++ {
			alg, lane, fp := Repartition, costmodel.LaneScan, int64(4<<20)
			if c%4 == 3 {
				alg, lane, fp = DBSideBloom, costmodel.LanePoint, int64(1<<20)
			}
			t0 := time.Now()
			p, err := s.Submit(context.Background(), sched.Request{
				Label: fmt.Sprintf("client-%d", c), Lane: lane, FootprintBytes: fp,
				Run: func(ctx context.Context, bud *mem.Budget) (any, error) {
					res, err := f.eng.RunCtxOpts(ctx, q, alg, RunOpts{Budget: bud})
					mu.Lock()
					lats = append(lats, time.Since(t0))
					mu.Unlock()
					return res, err
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			procs[c] = p
		}
		for _, p := range procs {
			if _, err := p.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	rows := float64(tN+lN) * clients * float64(b.N)
	b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-ms")
}
