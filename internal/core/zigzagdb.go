package core

import (
	"context"

	"hybridwh/internal/batch"
	"hybridwh/internal/bloom"
	"hybridwh/internal/edw"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/par"
	"hybridwh/internal/plan"
	"hybridwh/internal/types"
)

// ZigzagDBVariant is the variant the paper dismisses in Section 3.4: a
// zigzag-style two-way Bloom filter exchange whose *final join runs in the
// database*. It must scan the HDFS table twice — once to build BF_H, once
// (after BF_H has pruned T') to ship the doubly-filtered L” into the
// database — and "scanning the HDFS table twice, without the help of
// indexes, is expected to introduce significant overhead." Implemented as an
// extension so the claim is checkable; see BenchmarkAblationZigzagDBSide.
const ZigzagDBVariant Algorithm = 101

// runZigzagDB executes the dismissed variant:
//
//  1. DB builds BF_DB and sends it to every JEN worker.
//  2. JEN scan #1: local predicates + BF_DB, building BF_H only (nothing is
//     shuffled or shipped).
//  3. BF_H goes to the database, where it prunes T' to T”.
//  4. JEN scan #2: local predicates + BF_DB again; surviving rows ship to
//     the DB workers (grouped transfer), which reshuffle and join exactly as
//     the DB-side join does.
func (e *Engine) runZigzagDB(ctx context.Context, qs string, q *plan.JoinQuery) (*Result, error) {
	n, m := e.jen.Workers(), e.db.Workers()
	tbl, err := e.db.Table(q.DBTable)
	if err != nil {
		return nil, err
	}
	scanPlan, err := e.jen.PlanScan(q.HDFSTable)
	if err != nil {
		return nil, err
	}
	need := append(append([]int(nil), q.DBProj...), colSet(q.DBPred)...)
	accessPlan := e.db.PlanAccess(tbl, q.DBPred, need)

	bfdb, err := e.db.BuildBloom(tbl, q.DBPred, q.DBJoinColBase, e.cfg.BloomBits, e.cfg.BloomHashes)
	if err != nil {
		return nil, err
	}

	// Phase 1: scan #1 on every JEN worker, building local BF_H; union at
	// the designated worker. This is a plain fan-in, run to completion
	// before anything else moves.
	scanKey := q.HDFSWire[q.HDFSWireKey]
	locals := make([]*bloom.Filter, n)
	err = par.ForEach(n, func(w int) error {
		bfh := bloom.New(e.cfg.BloomBits, e.cfg.BloomHashes)
		err := e.jen.ScanFilterBatches(jen.ScanSpec{
			Plan: scanPlan, Worker: w,
			Proj: q.HDFSScanProj, Pred: q.HDFSPred, Pruner: q.Pruner(),
			DBFilter: wrapBloom(bfdb), BuildBloom: bfh, BloomKeyIdx: scanKey,
			Threads: e.cfg.WorkerThreads,
			Mem:     e.budget(qs),
		}, func(*batch.Batch) error { return nil })
		locals[w] = bfh
		return err
	})
	if err != nil {
		return nil, err
	}
	bfh := locals[0]
	for _, l := range locals[1:] {
		if err := bfh.Union(l); err != nil {
			return nil, err
		}
	}
	// BF_H crosses to the database (counted like every filter exchange).
	e.rec.Add(metrics.BloomBytes, int64(len(bfh.Marshal()))*int64(m))

	// Phase 2: the DB-side join machinery over the doubly-filtered inputs.
	// T'' = T' ∩ BF_H is produced inside dbJoinProgram via a wrapped access
	// plan; L'' ships from scan #2 with both filters applied.
	jenToDB := make([]int, n)
	groupSize := make([]int, m)
	for i := 0; i < n; i++ {
		d := i % m
		jenToDB[i] = d
		groupSize[d]++
	}
	estT := int64(float64(tbl.Rows()) * accessPlan.EstSelectivity)
	estL := q.HDFSCardHint
	if estL == 0 {
		if cat, err := e.jen.Catalog().Lookup(q.HDFSTable); err == nil {
			estL = cat.Rows
		}
	}
	strategy := edw.ChooseJoinStrategy(estT, estL, m)

	g, ctx := par.WithContext(ctx)
	var resultRows []types.Row
	for w := 0; w < n; w++ {
		w := w
		g.Go(func() error {
			// Scan #2: same filters; ship survivors to the group DB worker.
			me := jenName(w)
			dest := dbName(jenToDB[w])
			b := e.newBatcher(ctx, me, qs+"ingest", []string{dest}, metrics.HDFSSentTuples, metrics.HDFSSentBytes, w)
			serr := e.jen.ScanFilterBatches(jen.ScanSpec{
				Plan: scanPlan, Worker: w,
				Proj: q.HDFSScanProj, Pred: q.HDFSPred, Pruner: q.Pruner(),
				DBFilter: wrapBloom(bfdb), BloomKeyIdx: scanKey,
				Threads: e.cfg.WorkerThreads,
				Mem:     e.budget(qs),
			}, func(sb *batch.Batch) error {
				return b.sendBatch(dest, sb, q.HDFSWire)
			})
			firstErr(&serr, b.CloseWith(serr))
			return serr
		})
	}
	for i := 0; i < m; i++ {
		i := i
		g.Go(func() error {
			rows, err := e.dbJoinProgram(ctx, qs, q, tbl, accessPlan, strategy, i, m, groupSize[i], bfh)
			if i == 0 {
				resultRows = rows
			}
			return err
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &Result{Rows: resultRows, DBJoinStrategy: strategy}, nil
}
