package core

import (
	"context"
	"sync"
	"sync/atomic"

	"hybridwh/internal/batch"
	"hybridwh/internal/bloom"
	"hybridwh/internal/cluster"
	"hybridwh/internal/edw"
	"hybridwh/internal/expr"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/par"
	"hybridwh/internal/plan"
	"hybridwh/internal/relop"
	"hybridwh/internal/skew"
	"hybridwh/internal/types"
)

func dbName(i int) string  { return cluster.DBName(i) }
func jenName(i int) string { return cluster.JENName(i) }

// firstErr keeps the first non-nil error.
func firstErr(dst *error, err error) {
	if *dst == nil && err != nil {
		*dst = err
	}
}

// runHDFSSide executes the repartition join (± Bloom filter) and the zigzag
// join: the final join happens on the HDFS side, with both systems routing
// rows by the agreed hash function (Figures 3 and 4).
func (e *Engine) runHDFSSide(ctx context.Context, qs string, q *plan.JoinQuery, alg Algorithm) (*Result, error) {
	useBF := alg == RepartitionBloom || alg == Zigzag
	zig := alg == Zigzag
	n, m := e.jen.Workers(), e.db.Workers()

	tbl, err := e.db.Table(q.DBTable)
	if err != nil {
		return nil, err
	}
	scanPlan, err := e.jen.PlanScan(q.HDFSTable)
	if err != nil {
		return nil, err
	}
	need := append(append([]int(nil), q.DBProj...), colSet(q.DBPred)...)
	accessPlan := e.db.PlanAccess(tbl, q.DBPred, need)

	// Steps 1–2: build the global BF_DB and send it to every JEN worker.
	// This is blocking — everything on the HDFS side depends on it.
	if useBF {
		bfdb, err := e.db.BuildBloom(tbl, q.DBPred, q.DBJoinColBase, e.cfg.BloomBits, e.cfg.BloomHashes)
		if err != nil {
			return nil, err
		}
		if err := e.sendBloom(dbName(0), qs+"bfdb", bfdb, e.jenNames()); err != nil {
			return nil, err
		}
	}

	// Mid-query switching (Config.AdaptiveSwitch): the designated worker's
	// decision lands in st for the facade to surface on the Result.
	var st *adaptState
	if e.adaptiveOn() {
		st = &adaptState{}
	}

	g, ctx := par.WithContext(ctx)
	var resultRows []types.Row

	// The designated JEN worker returns the final aggregate to one DB node
	// (step 9 of Figure 4).
	g.Go(func() error {
		rows, err := e.collectRows(ctx, dbName(0), qs+"final", 1)
		resultRows = rows
		return err
	})

	for i := 0; i < m; i++ {
		i := i
		g.Go(func() error { return e.dbShipProgram(ctx, qs, q, tbl, accessPlan, i, n, zig) })
	}
	for w := 0; w < n; w++ {
		w := w
		g.Go(func() error { return e.jenRepartitionProgram(ctx, qs, q, scanPlan, w, n, m, useBF, zig, st) })
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	res := &Result{Rows: resultRows}
	if d := st.load(); d != nil {
		res.SwitchReason = d.reason
		if d.kind != keepPlan {
			res.Switched = true
			res.SwitchedTo = d.kind.String()
		}
	}
	return res, nil
}

// dbShipProgram is one DB worker's side of the repartition/zigzag join:
// filter and project T locally, optionally wait for BF_H and apply it
// (zigzag steps 4–5), then route T' rows directly to the JEN workers that
// will join them (step 6), using the agreed hash function.
func (e *Engine) dbShipProgram(ctx context.Context, qs string, q *plan.JoinQuery, tbl *edw.Table, ap edw.AccessPlan, i, n int, zig bool) error {
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx
	destOf := func(key int64) string { return jenName(cluster.PartitionFor(key, n)) }
	b := e.newBatcher(ctx, dbName(i), qs+"dbrows", e.jenNames(), metrics.DBSentTuples, metrics.DBSentBytes, i)

	if !zig {
		if e.cfg.RowAtATime {
			// Seed baseline: materialize T' with the per-row filter/project
			// and ship it row by row. Same rows, same counters.
			tw, err := e.db.FilterProject(tbl, i, ap, q.DBProj)
			pr.fail(err)
			if runErr == nil {
				pr.fail(b.scatterRows(tw, q.DBWireKey, destOf))
			}
		} else if e.adaptiveOn() {
			// Adaptive: T' is materialized so its observed size can feed
			// the switch decision, and routing waits for that decision —
			// hash home, hybrid scatter, or full broadcast.
			tw, err := e.db.FilterProject(tbl, i, ap, q.DBProj)
			pr.fail(err)
			e.adaptObserveT(pr, qs, q, i, tw)
			e.adaptRouteRows(ctx, pr, qs, q, b, i, tw, destOf, &runErr)
		} else if e.skewOn() {
			// Hybrid routing needs the agreed hot set, which exists only
			// after the whole HDFS scan: materialize T', wait for the set,
			// then ship with hot rows replicated to every JEN worker.
			tw, err := e.db.FilterProject(tbl, i, ap, q.DBProj)
			pr.fail(err)
			hot, herr := e.recvHotSet(ctx, dbName(i), qs+"hotset")
			pr.fail(herr)
			if runErr == nil {
				pr.fail(b.scatterRowsHybrid(tw, q.DBWireKey, hot, destOf))
			}
		} else {
			// No Bloom filter to wait for: T' streams out batch-at-a-time as
			// the partition scan produces it.
			pr.fail(e.db.FilterProjectBatches(tbl, i, ap, q.DBProj, e.cfg.BatchRows, e.cfg.WorkerThreads, func(fb *batch.Batch) error {
				return b.scatterBatch(fb, nil, q.DBWireKey, destOf)
			}))
		}
		pr.fail(b.CloseWith(runErr))
		return runErr
	}

	// Zigzag: T' must be materialized — BF_H arrives only after the whole
	// HDFS scan completes, and it prunes what is shipped (steps 4–5).
	// Under the adaptive layer the skew path stands down (the hybrid
	// partitioner engages only by observed decision).
	adaptOn := e.adaptiveOn()
	skewOn := e.skewOn() && !adaptOn
	tw, err := e.db.FilterProject(tbl, i, ap, q.DBProj)
	if err != nil {
		// Protocol obligation: JEN workers expecting this worker's stream
		// must learn of the failure, the observation fan-in must still be
		// fed, and the BF_H/decision receives must be drained — under the
		// aborted program context, so they cannot block even when the
		// payloads will never arrive.
		pr.fail(err)
		pr.fail(b.CloseWith(runErr))
		if adaptOn {
			e.adaptObserveT(pr, qs, q, i, nil)
		}
		if _, berr := e.recvBloom(ctx, dbName(i), qs+"bfh", 1); berr != nil {
			pr.fail(berr)
		}
		if adaptOn {
			e.adaptRouteRows(ctx, pr, qs, q, b, i, nil, destOf, &runErr)
		}
		if skewOn {
			if _, herr := e.recvHotSet(ctx, dbName(i), qs+"hotset"); herr != nil {
				pr.fail(herr)
			}
		}
		return runErr
	}
	if adaptOn {
		// The snapshot goes out before the BF_H wait (see adaptObserveT);
		// |T'| is reported pre-pruning — an upper bound, which is what the
		// committed plan would ship if BF_H turned out useless.
		e.adaptObserveT(pr, qs, q, i, tw)
	}
	bfh, berr := e.recvBloom(ctx, dbName(i), qs+"bfh", 1)
	if berr != nil {
		pr.fail(berr)
	} else {
		// The optimizer decides whether T' was worth materializing; in
		// either case BF_H prunes what is shipped (zigzag step 5).
		tw, _ = e.db.ApplyBloom(tw, q.DBWireKey, bfh)
	}
	if adaptOn {
		e.adaptRouteRows(ctx, pr, qs, q, b, i, tw, destOf, &runErr)
	} else if skewOn {
		hot, herr := e.recvHotSet(ctx, dbName(i), qs+"hotset")
		pr.fail(herr)
		if runErr == nil {
			pr.fail(b.scatterRowsHybrid(tw, q.DBWireKey, hot, destOf))
		}
	} else if runErr == nil {
		pr.fail(b.scatterRows(tw, q.DBWireKey, destOf))
	}
	pr.fail(b.CloseWith(runErr))
	return runErr
}

// jenRepartitionProgram is one JEN worker's side of the repartition/zigzag
// join, implementing the Figure 7 pipeline: receive BF_DB, scan/filter/
// shuffle while concurrently building the hash table from received rows and
// buffering database rows in the background, then probe, partially
// aggregate, and participate in the global aggregation. The pipeline runs
// batch-at-a-time unless Config.RowAtATime reverts it to the seed baseline.
func (e *Engine) jenRepartitionProgram(ctx context.Context, qs string, q *plan.JoinQuery, scanPlan *jen.ScanPlan, w, n, m int, useBF, zig bool, st *adaptState) error {
	me := jenName(w)
	rowMode := e.cfg.RowAtATime
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx

	// Blocking: wait for the database Bloom filter (zigzag step 2).
	var bfdb *bloom.Filter
	if useBF {
		f, err := e.recvBloom(ctx, me, qs+"bfdb", 1)
		pr.fail(err)
		bfdb = f
	}

	// Background receivers start before any sending to keep the shuffle
	// deadlock-free: the hash table builds from shuffled rows as they
	// arrive, and database rows are buffered as they arrive (Section 4.4).
	// With a spill budget configured, the build side grace-spills to disk
	// instead of growing without bound.
	bud := e.budget(qs)
	ht, err := e.newJoinTable(qs, q.HDFSWireKey)
	if err != nil {
		pr.fail(err)
		ht = relop.NewMemJoinTable(q.HDFSWireKey)
	}
	defer ht.Close()
	var dbRows []types.Row
	var dbBatches []*batch.Batch
	var probeTuples int64
	// Receiver errors abort the program context (bgFail): if one receiver
	// hits an incoming MsgError, its sibling and the rest of the program must
	// not keep waiting for streams a dead peer will never finish.
	var bg par.Group
	if rowMode {
		bg.Go(func() error {
			var recv int64
			err := e.recvRows(ctx, me, qs+"shuffle", n, func(r types.Row) error {
				recv++
				return ht.Insert(r)
			})
			e.rec.AddAt(metrics.JENRecvTuples, w, recv)
			pr.bgFail(err)
			return err
		})
		bg.Go(func() error {
			rows, err := e.collectRows(ctx, me, qs+"dbrows", m)
			dbRows = rows
			probeTuples = int64(len(rows))
			pr.bgFail(err)
			return err
		})
	} else {
		bg.Go(func() error {
			var recv int64
			err := e.recvBatches(ctx, me, qs+"shuffle", n, func(b *batch.Batch) error {
				recv += int64(b.Len())
				return ht.InsertBatch(b)
			})
			e.rec.AddAt(metrics.JENRecvTuples, w, recv)
			pr.bgFail(err)
			return err
		})
		bg.Go(func() error {
			bs, tuples, err := e.collectBatches(ctx, me, qs+"dbrows", m)
			dbBatches, probeTuples = bs, tuples
			pr.bgFail(err)
			return err
		})
	}

	// Scan + process + send, all pipelined.
	var bfh *bloom.Filter
	if zig {
		bfh = bloom.New(e.cfg.BloomBits, e.cfg.BloomHashes)
	}
	b := e.newBatcher(ctx, me, qs+"shuffle", e.jenNames(), metrics.JENShuffleTuples, metrics.JENShuffleBytes, w)
	scanKey := q.HDFSWire[q.HDFSWireKey]
	destOf := func(key int64) string { return jenName(cluster.PartitionFor(key, n)) }
	spec := jen.ScanSpec{
		Plan: scanPlan, Worker: w,
		Proj: q.HDFSScanProj, Pred: q.HDFSPred, Pruner: q.Pruner(),
		DBFilter: wrapBloom(bfdb), BuildBloom: bfh, BloomKeyIdx: scanKey,
		// Morsel workers filter, bloom-probe and shuffle concurrently; the
		// shared batcher keeps message counts deterministic (row mode forces
		// the single-threaded seed pipeline inside ScanFilter).
		Threads: e.cfg.WorkerThreads,
		Mem:     bud,
	}
	// The adaptive layer subsumes the static skew path: plain hash routing
	// is the committed default and the hybrid partitioner engages only by
	// observed decision.
	adaptOn := e.adaptiveOn()
	skewOn := e.skewOn() && !adaptOn
	var aw *adaptJENWorker
	if adaptOn {
		watch, werr := e.watchDecision(me, qs+"adapt.dec")
		pr.fail(werr)
		if werr == nil {
			defer watch.close()
			aw = newAdaptJENWorker(e, qs, q, b, w, n, scanKey, watch, destOf)
			spec.Progress = &aw.progress
		}
	}
	var sk *skew.Sketch
	var buffered []*batch.Batch
	if runErr == nil {
		var err error
		if rowMode {
			err = e.jen.ScanFilter(spec, func(r types.Row) error {
				wire := r.Project(q.HDFSWire)
				//lint:ignore rowloop deliberate row-at-a-time baseline (Config.RowAtATime)
				return b.send(destOf(wire[q.HDFSWireKey].Int()), wire)
			})
		} else if aw != nil {
			// Adaptive: buffer, observe and poll for the switch decision;
			// routing starts the moment the decision lands (see adaptive.go).
			err = e.jen.ScanFilterBatches(spec, aw.onBatch)
		} else if skewOn {
			// Skew path: the shuffle is deferred — the hot set does not
			// exist until every worker's scan completes — so the scan builds
			// the heavy-hitter sketch and buffers wire-projected batches
			// locally instead of scattering them.
			sk = skew.NewSketch(e.cfg.SkewSketchKeys)
			spec.BuildSketch = sk
			var bufMu sync.Mutex // guards buffered (morsel workers yield concurrently)
			err = e.jen.ScanFilterBatches(spec, func(sb *batch.Batch) error {
				wb := batch.New(len(q.HDFSWire), sb.Len())
				perr := sb.Each(func(i int) error {
					wb.AppendFrom(sb, i, q.HDFSWire)
					return nil
				})
				bufMu.Lock()
				buffered = append(buffered, wb)
				bufMu.Unlock()
				return perr
			})
		} else {
			err = e.jen.ScanFilterBatches(spec, func(sb *batch.Batch) error {
				return b.scatterBatch(sb, q.HDFSWire, scanKey, destOf)
			})
		}
		pr.fail(err)
	}
	if skewOn {
		// Agree on the hot set, then shuffle from the buffers: cold keys to
		// their hash home (identical to the plain partitioner), hot keys
		// round-robin from a per-sender offset so no worker receives a hot
		// key's full volume.
		hot, herr := e.agreeHotSet(ctx, qs, me, w, n, sk)
		pr.fail(herr)
		if runErr == nil {
			p := skew.NewPartitioner(n, hot, w)
			var hotTuples int64
			route := func(key int64) string {
				if p.IsHot(key) {
					hotTuples++
				}
				return jenName(p.Route(key))
			}
			for _, wb := range buffered {
				if err := b.scatterBatch(wb, nil, q.HDFSWireKey, route); err != nil {
					pr.fail(err)
					break
				}
			}
			e.rec.AddAt(metrics.JENShuffleHotTuples, w, hotTuples)
		}
	}
	if aw != nil {
		// Complete the switch handshake: contribute this worker's snapshot
		// (even when failing), coordinate at the designated worker, then
		// apply the decision — flushing the buffered batches for keep and
		// hybrid, or retaining them for the local broadcast probe below.
		aw.finish(ctx, pr, scanPlan.Table.Rows, int64(16*len(q.HDFSWire)), st)
	}
	pr.fail(b.CloseWith(runErr))

	// Zigzag steps 3b–4: local BF_H to the designated worker; the
	// designated worker unions them and broadcasts BF_H to the database.
	// The (possibly partial) filter is sent even on the error path so the
	// fan-in completes; the query's failure travels via MsgError and the
	// context.
	desig := e.jen.DesignatedWorker()
	if zig {
		pr.fail(e.sendBloom(me, qs+"bfhlocal", bfh, []string{jenName(desig)}))
		if w == desig {
			global, err := e.recvBloom(ctx, me, qs+"bfhlocal", n)
			pr.fail(err)
			if global == nil {
				global = bloom.New(e.cfg.BloomBits, e.cfg.BloomHashes)
			}
			pr.fail(e.sendBloom(me, qs+"bfh", global, e.dbNames()))
		}
	}

	// Wait for the hash table and the buffered database rows.
	pr.fail(bg.Wait())
	pr.fail(ht.FinishBuild())

	agg := relop.NewHashAgg(q.GroupBy, q.Aggs)
	agg.SetBudget(bud)
	defer func() { bud.Release(agg.MemBytes()) }()

	if aw != nil && aw.decided() == switchBroadcast {
		// Broadcast switch: the shuffle carried no rows (ht stayed empty)
		// and dbBatches hold the full broadcast T'; join the buffered L'
		// against it locally, exactly as runBroadcast would have.
		charged := chargeBatches(bud, dbBatches)
		defer bud.Release(charged)
		if runErr == nil {
			pr.fail(e.probeLocalBroadcast(aw.takeBuffered(), dbBatches, q, agg, w, bud))
		}
	} else {
		e.rec.AddAt(metrics.JoinBuildTuples, w, ht.Len())
		e.rec.AddAt(metrics.JoinProbeTuples, w, probeTuples)

		// The buffered probe side is charged to the query budget for the
		// probe's duration (the build side accounts for itself inside the
		// spilling table).
		charged := chargeBatches(bud, dbBatches) + chargeRows(bud, dbRows)
		defer bud.Release(charged)

		// Probe with the database rows; combined layout is HDFS wire ++ DB wire.
		if runErr == nil {
			if rowMode {
				pr.fail(e.probeAndAggregate(ht, dbRows, q, agg, w))
			} else {
				pr.fail(e.probeAndAggregateBatches(ht, dbBatches, q, agg, e.cfg.WorkerThreads))
			}
		}
		e.recordSpillStats(ht, w)
	}

	return e.finishHDFSAggregation(ctx, qs, q, agg, w, n, runErr)
}

// newJoinTable builds the HDFS-side join table for the query: a dynamic
// hybrid hash join charging the query's shared budget when one is
// registered (RunOpts.Budget), a privately-budgeted spilling table under
// Config.SpillBudgetBytes, and the unbounded in-memory table otherwise.
func (e *Engine) newJoinTable(qs string, keyIdx int) (relop.JoinTable, error) {
	if bud := e.budget(qs); bud != nil {
		return relop.NewSharedSpillingHashTable(keyIdx, bud, e.cfg.SpillDir)
	}
	if e.cfg.SpillBudgetBytes > 0 {
		return relop.NewSpillingHashTable(keyIdx, e.cfg.SpillBudgetBytes, e.cfg.SpillDir)
	}
	return relop.NewMemJoinTable(keyIdx), nil
}

// combiner accumulates join matches (build row ++ probe row) into a
// combined-layout batch; when the batch fills, the post-join predicate runs
// as a batch filter and the survivors fold into the partial aggregate
// batch-at-a-time. output counts survivors, exactly as the per-row
// evalPost/agg.Add path did.
type combiner struct {
	e      *Engine
	q      *plan.JoinQuery
	agg    *relop.HashAgg
	out    *batch.Batch
	output int64
}

func (c *combiner) add(left, right types.Row) error {
	if c.out == nil {
		c.out = batch.New(len(left)+len(right), c.e.cfg.BatchRows)
	}
	c.out.AppendConcat(left, right)
	if c.out.Full() {
		return c.flush()
	}
	return nil
}

func (c *combiner) flush() error {
	if c.out == nil || c.out.Size() == 0 {
		return nil
	}
	if err := expr.FilterBatch(c.q.PostJoin, c.out); err != nil {
		return err
	}
	c.output += int64(c.out.Len())
	if err := c.agg.AddBatch(c.out); err != nil {
		return err
	}
	c.out.Reset()
	return nil
}

// probeAndAggregate probes the table of HDFS rows with database rows,
// applies the post-join predicate and folds survivors into the partial
// aggregate. Spilled matches surface during Drain. This is the row-at-a-time
// baseline path (Config.RowAtATime).
func (e *Engine) probeAndAggregate(ht relop.JoinTable, dbRows []types.Row, q *plan.JoinQuery, agg *relop.HashAgg, slot int) error {
	var output int64
	emit := func(hr, dbr types.Row) error {
		combined := hr.Concat(dbr)
		ok, err := evalPost(q, combined)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		output++
		return agg.Add(combined)
	}
	for _, dbr := range dbRows {
		if err := ht.Probe(dbr, q.DBWireKey, emit); err != nil {
			return err
		}
	}
	if err := ht.Drain(emit); err != nil {
		return err
	}
	e.rec.Add(metrics.JoinOutputTuples, output)
	return nil
}

// probeAndAggregateBatches is the batch path of probeAndAggregate: probe
// batches drive JoinTable.ProbeBatch and matches accumulate through a
// combiner. Counters are identical to the row path. With threads > 1 and a
// purely in-memory table the probe fans out across goroutines; the spilling
// table stays sequential (its partition files are not safe for concurrent
// probing).
func (e *Engine) probeAndAggregateBatches(ht relop.JoinTable, probes []*batch.Batch, q *plan.JoinQuery, agg *relop.HashAgg, threads int) error {
	if mem, isMem := ht.(*relop.MemJoinTable); isMem && threads > 1 && len(probes) > 1 {
		return e.probeAndAggregateParallel(mem, probes, q, agg, threads)
	}
	cmb := &combiner{e: e, q: q, agg: agg}
	for _, pb := range probes {
		if err := ht.ProbeBatch(pb, q.DBWireKey, cmb.add); err != nil {
			return err
		}
	}
	if err := ht.Drain(cmb.add); err != nil {
		return err
	}
	if err := cmb.flush(); err != nil {
		return err
	}
	e.rec.Add(metrics.JoinOutputTuples, cmb.output)
	return nil
}

// probeAndAggregateParallel fans the probe batches out over `threads`
// goroutines against the sealed in-memory table (the probe stage of the
// paper's multi-threaded JEN worker). Each goroutine folds its matches into a
// private combiner and partial aggregate — no locks on the hot path — and the
// privates merge into agg afterwards via MergePartial. Join output and group
// totals are independent of how batches land on threads; only the per-thread
// split (metrics.JoinProbeSplit) depends on scheduling.
func (e *Engine) probeAndAggregateParallel(mem *relop.MemJoinTable, probes []*batch.Batch, q *plan.JoinQuery, agg *relop.HashAgg, threads int) error {
	// Seal the flat table before any concurrent probe (idempotent — the
	// caller's FinishBuild already did this on the normal path).
	if err := mem.FinishBuild(); err != nil {
		return err
	}
	if threads > len(probes) {
		threads = len(probes)
	}
	cmbs := make([]*combiner, threads)
	var next atomic.Int64
	var g par.Group
	for t := 0; t < threads; t++ {
		t := t
		cmbs[t] = &combiner{e: e, q: q, agg: relop.NewHashAgg(q.GroupBy, q.Aggs)}
		g.Go(func() error {
			var rows int64
			for {
				i := int(next.Add(1)) - 1
				if i >= len(probes) {
					break
				}
				rows += int64(probes[i].Len())
				if err := mem.ProbeBatch(probes[i], q.DBWireKey, cmbs[t].add); err != nil {
					return err
				}
			}
			e.rec.AddAt(metrics.JoinProbeSplit, t, rows)
			return cmbs[t].flush()
		})
	}
	if err := g.Wait(); err != nil {
		return err
	}
	var output int64
	for _, cmb := range cmbs {
		output += cmb.output
		for _, partial := range cmb.agg.PartialRows() {
			if err := agg.MergePartial(partial); err != nil {
				return err
			}
		}
	}
	e.rec.Add(metrics.JoinOutputTuples, output)
	return nil
}

// finishHDFSAggregation ships this worker's partial aggregate to the
// designated worker; the designated worker merges all partials and sends the
// final rows to a single DB node (steps 7–9 of Figures 2–4). It always
// completes the protocol, then reports runErr.
func (e *Engine) finishHDFSAggregation(ctx context.Context, qs string, q *plan.JoinQuery, agg *relop.HashAgg, w, n int, runErr error) error {
	return e.finishAggregation(ctx, qs, q.GroupBy, q.Aggs, agg, w, n, runErr)
}

// finishAggregation is the fan-in shared by the two-table algorithms and
// the N-way executor: it only needs the grouping spec, not a full
// plan.JoinQuery.
func (e *Engine) finishAggregation(ctx context.Context, qs string, groupBy []expr.Expr, aggs []relop.AggSpec, agg *relop.HashAgg, w, n int, runErr error) error {
	// A worker that arrives here already failing must not block in the
	// aggregation fan-in waiting for partials that will never come: the
	// program context is aborted up front, so the receives below fail fast
	// while MsgError and the per-query teardown reach the peers.
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx
	pr.fail(runErr)
	desig := e.jen.DesignatedWorker()
	pb := e.newBatcher(ctx, jenName(w), qs+"partial", []string{jenName(desig)}, "", "", w)
	if runErr == nil {
		pr.fail(pb.sendRows(jenName(desig), agg.PartialRows()))
	}
	pr.fail(pb.CloseWith(runErr))

	if w == desig {
		final := relop.NewHashAgg(groupBy, aggs)
		pr.fail(e.recvRows(ctx, jenName(w), qs+"partial", n, func(r types.Row) error {
			return final.MergePartial(r)
		}))
		rows := final.FinalRows()
		e.rec.Add(metrics.AggGroups, int64(len(rows)))
		fb := e.newBatcher(ctx, jenName(w), qs+"final", []string{dbName(0)}, "", "", w)
		if runErr == nil {
			pr.fail(fb.sendRows(dbName(0), rows))
		}
		pr.fail(fb.CloseWith(runErr))
	}
	return runErr
}

// evalPost evaluates the post-join predicate over a combined row.
func evalPost(q *plan.JoinQuery, combined types.Row) (bool, error) {
	if q.PostJoin == nil {
		return true, nil
	}
	v, err := q.PostJoin.Eval(combined)
	if err != nil {
		return false, err
	}
	return v.Truth(), nil
}

// colSet returns the columns a predicate references.
func colSet(e2 interface{ Cols([]int) []int }) []int {
	if e2 == nil {
		return nil
	}
	return e2.Cols(nil)
}

// runBroadcast executes the HDFS-side broadcast join (Figure 2): every DB
// worker broadcasts its filtered partition to every JEN worker, which joins
// it against its local share of the HDFS scan — no HDFS shuffle at all.
//
// Two transfer schemes exist (Section 4.3): the default ships every DB
// worker's rows directly to all JEN workers; with Config.BroadcastRelay each
// DB worker ships to exactly one JEN worker, which relays to the rest.
func (e *Engine) runBroadcast(ctx context.Context, qs string, q *plan.JoinQuery) (*Result, error) {
	n, m := e.jen.Workers(), e.db.Workers()
	relay := e.cfg.BroadcastRelay
	tbl, err := e.db.Table(q.DBTable)
	if err != nil {
		return nil, err
	}
	scanPlan, err := e.jen.PlanScan(q.HDFSTable)
	if err != nil {
		return nil, err
	}
	need := append(append([]int(nil), q.DBProj...), colSet(q.DBPred)...)
	accessPlan := e.db.PlanAccess(tbl, q.DBPred, need)

	// Relay mode: DB worker i feeds JEN worker i%n; directSenders counts
	// the DB workers feeding each JEN worker.
	directSenders := make([]int, n)
	for i := 0; i < m; i++ {
		directSenders[i%n]++
	}

	g, ctx := par.WithContext(ctx)
	var resultRows []types.Row
	g.Go(func() error {
		rows, err := e.collectRows(ctx, dbName(0), qs+"final", 1)
		resultRows = rows
		return err
	})

	for i := 0; i < m; i++ {
		i := i
		g.Go(func() error {
			// Tuples are counted once per row, not once per copy: the
			// expensive per-row UDF read happens once, and the fan-out to
			// every JEN worker is cheap replication (bytes are counted per
			// copy by the bus and the byte counter).
			dests := e.jenNames()
			if relay {
				dests = []string{jenName(i % n)}
			}
			b := e.newBatcher(ctx, dbName(i), qs+"dbrows", dests, "", metrics.DBSentBytes, i)
			var sent int64
			err := e.db.FilterProjectBatches(tbl, i, accessPlan, q.DBProj, e.cfg.BatchRows, e.cfg.WorkerThreads, func(fb *batch.Batch) error {
				sent += int64(fb.Len())
				return b.broadcastBatch(fb, nil)
			})
			firstErr(&err, b.CloseWith(err))
			e.rec.AddAt(metrics.DBSentTuples, i, sent)
			return err
		})
	}

	for w := 0; w < n; w++ {
		w := w
		g.Go(func() error {
			me := jenName(w)
			var runErr error
			bud := e.budget(qs)
			// Build the hash table from the broadcast T' first: local joins
			// need the whole filtered database table.
			ht := relop.NewHashTable(q.DBWireKey)
			if relay {
				firstErr(&runErr, e.broadcastRelayRecv(ctx, qs, me, w, n, directSenders[w], ht))
			} else {
				firstErr(&runErr, e.recvBatches(ctx, me, qs+"dbrows", m, func(b *batch.Batch) error {
					return ht.InsertBatch(b)
				}))
			}
			e.rec.AddAt(metrics.JoinBuildTuples, w, ht.Len())
			charged := chargeJoinBuild(bud, ht.Len(), len(q.DBProj))
			defer bud.Release(charged)

			// Scan and probe in the pipeline; partial aggregation inline.
			// Probe rows never leave the scan batch: the wire projection is
			// materialized into scratch only for rows with a non-empty bucket.
			// Morsel workers probe the sealed table lock-free and serialize
			// only on the combiner; totals are independent of the interleaving.
			agg := relop.NewHashAgg(q.GroupBy, q.Aggs)
			agg.SetBudget(bud)
			defer func() { bud.Release(agg.MemBytes()) }()
			cmb := &combiner{e: e, q: q, agg: agg}
			var cmbMu sync.Mutex
			scanKey := q.HDFSWire[q.HDFSWireKey]
			var probes atomic.Int64
			if runErr == nil {
				ht.Build() // seal before concurrent probes
				err := e.jen.ScanFilterBatches(jen.ScanSpec{
					Plan: scanPlan, Worker: w,
					Proj: q.HDFSScanProj, Pred: q.HDFSPred, Pruner: q.Pruner(),
					Threads: e.cfg.WorkerThreads,
					Mem:     bud,
				}, func(sb *batch.Batch) error {
					probes.Add(int64(sb.Len()))
					keys := sb.Col(scanKey)
					var wire types.Row
					return sb.Each(func(i int) error {
						bucket := ht.Probe(keys[i].Int())
						if len(bucket) == 0 {
							return nil
						}
						if cap(wire) < len(q.HDFSWire) {
							wire = make(types.Row, len(q.HDFSWire))
						}
						for j, p := range q.HDFSWire {
							wire[j] = sb.Col(p)[i]
						}
						cmbMu.Lock()
						defer cmbMu.Unlock()
						for _, dbr := range bucket {
							if err := cmb.add(wire, dbr); err != nil {
								return err
							}
						}
						return nil
					})
				})
				firstErr(&runErr, err)
				firstErr(&runErr, cmb.flush())
			}
			e.rec.AddAt(metrics.JoinProbeTuples, w, probes.Load())
			e.rec.Add(metrics.JoinOutputTuples, cmb.output)

			return e.finishHDFSAggregation(ctx, qs, q, agg, w, n, runErr)
		})
	}

	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &Result{Rows: resultRows}, nil
}

// broadcastRelayRecv implements the JEN side of the relay scheme: batches
// from this worker's DB feeders go into the hash table AND onward to every
// other JEN worker; batches relayed by peers complete the table. Receivers
// drain the relay stream in the background so relays never deadlock.
func (e *Engine) broadcastRelayRecv(ctx context.Context, qs, me string, w, n, directSenders int, ht *relop.HashTable) error {
	var runErr error
	pr := newProg(ctx, &runErr)
	defer pr.release()
	ctx = pr.ctx
	others := make([]string, 0, n-1)
	for j := 0; j < n; j++ {
		if j != w {
			others = append(others, jenName(j))
		}
	}
	// The relay drainer and the direct-stream receiver run concurrently and
	// both feed the same hash table, so inserts must be serialized.
	var htMu sync.Mutex
	insert := func(b *batch.Batch) error {
		htMu.Lock()
		defer htMu.Unlock()
		return ht.InsertBatch(b)
	}
	var bg par.Group
	bg.Go(func() error {
		err := e.recvBatches(ctx, me, qs+"relay", n-1, insert)
		pr.bgFail(err)
		return err
	})
	rb := e.newBatcher(ctx, me, qs+"relay", others, metrics.JENShuffleTuples, metrics.JENShuffleBytes, w)
	pr.fail(e.recvBatches(ctx, me, qs+"dbrows", directSenders, func(b *batch.Batch) error {
		if err := insert(b); err != nil {
			return err
		}
		return rb.broadcastBatch(b, nil)
	}))
	pr.fail(rb.CloseWith(runErr))
	pr.fail(bg.Wait())
	return runErr
}

// wrapBloom adapts a (possibly nil) Bloom filter to the scan's KeyFilter.
func wrapBloom(bf *bloom.Filter) jen.KeyFilter {
	if bf == nil {
		return nil
	}
	return jen.BloomKeyFilter{F: bf}
}
