package core

import (
	"hybridwh/internal/batch"
	"hybridwh/internal/mem"
	"hybridwh/internal/metrics"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// This file is the execution layer's memory-governance glue: the worker
// programs charge their materialized state — buffered probe batches, hash
// aggregation groups, hash-table builds — against the query's mem.Budget
// when one is registered (RunOpts.Budget), and record the dynamic hybrid
// hash join's spill activity. With no budget every helper is a no-op, so
// ungoverned runs keep byte-identical counter snapshots.

// approxBatchBytes estimates a buffered batch's memory footprint: a boxed
// value header per physical cell plus a batch header. It matches the batch
// pool's accounting geometry so charges and releases line up.
func approxBatchBytes(b *batch.Batch) int64 {
	return int64(b.NumCols())*int64(b.Size())*16 + 64
}

// chargeBatches Force-charges buffered batches against bud and returns the
// bytes charged, for the caller to Release once the batches are consumed.
// The charge is a Force, not a Reserve: the batches already exist (they
// were buffered by a background receiver), so refusing them cannot shrink
// memory — but the pressure callbacks still fire, shedding join partitions
// to compensate.
func chargeBatches(bud *mem.Budget, bs []*batch.Batch) int64 {
	if bud == nil {
		return 0
	}
	var n int64
	for _, b := range bs {
		n += approxBatchBytes(b)
	}
	bud.Force(n)
	return n
}

// chargeRows is chargeBatches for the row-at-a-time baseline's buffered
// probe rows.
func chargeRows(bud *mem.Budget, rows []types.Row) int64 {
	if bud == nil || len(rows) == 0 {
		return 0
	}
	var n int64
	for _, r := range rows {
		n += int64(types.EncodedRowSize(r)) + 48
	}
	bud.Force(n)
	return n
}

// chargeJoinBuild charges an in-memory hash-table build of rows rows of
// cols values each — the broadcast and DB-side joins, whose build sides
// are plain HashTables fed from materialized wire rows rather than the
// budget-aware spilling table.
func chargeJoinBuild(bud *mem.Budget, rows int64, cols int) int64 {
	if bud == nil || rows == 0 {
		return 0
	}
	n := rows * (int64(cols)*16 + 48)
	bud.Force(n)
	return n
}

// recordSpillStats copies a spilling table's counters into the per-worker
// spill vectors. Only non-zero values are recorded so spill-free runs keep
// byte-identical snapshots; under a shared budget the per-worker split
// depends on which worker the pressure lands on — diagnostic, like
// JENMorselTuples.
func (e *Engine) recordSpillStats(ht relop.JoinTable, slot int) {
	s, ok := ht.(*relop.SpillingHashTable)
	if !ok {
		return
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{metrics.SpillBuildRows, s.SpilledBuildRows},
		{metrics.SpillProbeRows, s.SpilledProbeRows},
		{metrics.SpillEvictions, s.Evictions},
		{metrics.SpillRepartitions, s.Repartitions},
		{metrics.SpillNLFallbacks, s.NLFallbacks},
	} {
		if c.v != 0 {
			e.rec.AddAt(c.name, slot, c.v)
		}
	}
}
