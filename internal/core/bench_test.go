package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hybridwh/internal/format"
	"hybridwh/internal/netsim"
)

// BenchmarkScanFilterJoin measures the scan → filter → shuffle → join →
// aggregate hot path (the repartition algorithm end to end) in both
// execution modes: the vectorized default and the Config.RowAtATime
// baseline, which reverts the JEN repartition pipeline to the seed's
// row-at-a-time semantics. Both modes move identical tuples and bytes (see
// TestRowModeMatchesBatchMode), so the delta is pure per-row interface
// overhead — the quantity this PR removes.
//
// "scale=N" sizes the fixture at N× the unit-test base (300 T / 1000 L
// rows per unit), so scale=100 joins 30k T rows against 100k L rows across
// 4 DB and 6 JEN workers. rows/s is scanned input rows per second.
//
// "batch" pins Config.WorkerThreads to 1 (the deterministic single-threaded
// pipeline); "batch-mt" raises it to GOMAXPROCS, measuring the morsel
// scan/shuffle and partition-parallel probe. On a single-CPU host the two
// coincide (modulo goroutine overhead).
func BenchmarkScanFilterJoin(b *testing.B) {
	for _, scale := range []int{10, 100} {
		tN, lN := 300*scale, 1000*scale
		for _, mode := range []struct {
			name    string
			rowMode bool
			threads int
		}{
			{"batch", false, 1},
			{"batch-mt", false, runtime.GOMAXPROCS(0)},
			{"row", true, 1},
		} {
			b.Run(fmt.Sprintf("scale=%d/%s", scale, mode.name), func(b *testing.B) {
				f := buildFixture(b, netsim.NewChanBus(256), 4, 6, tN, lN, format.HWCName)
				defer f.eng.Close()
				f.eng.cfg.RowAtATime = mode.rowMode
				f.eng.cfg.WorkerThreads = mode.threads
				q := exampleQuery(b, f, 300, 400)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.eng.Run(q, Repartition); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				rows := float64(tN+lN) * float64(b.N)
				b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}

// BenchmarkAdaptiveMispredict measures the cost of living with a
// mispredicted plan versus fixing it mid-flight. The fixture is the
// broadcast-switch regime (tiny T', every L key joinable), forced through
// the repartition algorithm as a mispredicting advisor would commit it:
// "static" runs the bad plan to completion, shuffling all of L' to meet a
// few hundred build rows; "adaptive" observes the first batches, abandons
// the shuffle and broadcasts T' instead. The adaptive cell must win —
// that delta is the regression this layer exists to recover. rows/s is
// scanned input rows per second.
func BenchmarkAdaptiveMispredict(b *testing.B) {
	const tN, lN = 600, 20000
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{
		{"static", false},
		{"adaptive", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			f := buildSkewFixtureKeys(b, netsim.NewChanBus(256), 2, 3, tN, lN,
				adaptTestConfig(mode.adaptive), alignedKeys)
			defer f.eng.Close()
			q := exampleQuery(b, f, 300, 400)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.eng.Run(q, Repartition); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			rows := float64(tN+lN) * float64(b.N)
			b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkSkewedJoin measures the repartition(BF) join over a uniform
// (zipf=0) and a Zipf(s=1.1) L-key distribution, with the skew-resilient
// shuffle off (skew=0) and on (skew=0.05). The interesting cells: on
// uniform keys the hybrid shuffle's only cost is its deferred-shuffle
// bookkeeping (sketch build, empty hot set), while on Zipf keys it trades
// that overhead for a balanced receive side. rows/s is scanned input rows
// per second.
func BenchmarkSkewedJoin(b *testing.B) {
	const tN, lN = 3000, 10000
	for _, zipfS := range []float64{0, 1.1} {
		zipfS := zipfS
		// One Zipf source per fixture build (rand.NewZipf wraps the
		// fixture's own rng), so each sub-benchmark draws an identical key
		// stream.
		newKeyGen := func() func(*rand.Rand) int {
			if zipfS <= 1 {
				return func(rng *rand.Rand) int { return rng.Intn(300) }
			}
			var z *rand.Zipf
			return func(rng *rand.Rand) int {
				if z == nil {
					z = rand.NewZipf(rng, zipfS, 1, 299)
				}
				return int(z.Uint64())
			}
		}
		for _, threshold := range []float64{0, 0.05} {
			b.Run(fmt.Sprintf("zipf=%v/skew=%v", zipfS, threshold), func(b *testing.B) {
				f := buildSkewFixtureKeys(b, netsim.NewChanBus(256), 4, 6, tN, lN,
					skewTestConfig(threshold), newKeyGen())
				defer f.eng.Close()
				q := exampleQuery(b, f, 300, 400)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.eng.Run(q, RepartitionBloom); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				rows := float64(tN+lN) * float64(b.N)
				b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}
