package core

import (
	"fmt"
	"runtime"
	"testing"

	"hybridwh/internal/format"
	"hybridwh/internal/netsim"
)

// BenchmarkScanFilterJoin measures the scan → filter → shuffle → join →
// aggregate hot path (the repartition algorithm end to end) in both
// execution modes: the vectorized default and the Config.RowAtATime
// baseline, which reverts the JEN repartition pipeline to the seed's
// row-at-a-time semantics. Both modes move identical tuples and bytes (see
// TestRowModeMatchesBatchMode), so the delta is pure per-row interface
// overhead — the quantity this PR removes.
//
// "scale=N" sizes the fixture at N× the unit-test base (300 T / 1000 L
// rows per unit), so scale=100 joins 30k T rows against 100k L rows across
// 4 DB and 6 JEN workers. rows/s is scanned input rows per second.
//
// "batch" pins Config.WorkerThreads to 1 (the deterministic single-threaded
// pipeline); "batch-mt" raises it to GOMAXPROCS, measuring the morsel
// scan/shuffle and partition-parallel probe. On a single-CPU host the two
// coincide (modulo goroutine overhead).
func BenchmarkScanFilterJoin(b *testing.B) {
	for _, scale := range []int{10, 100} {
		tN, lN := 300*scale, 1000*scale
		for _, mode := range []struct {
			name    string
			rowMode bool
			threads int
		}{
			{"batch", false, 1},
			{"batch-mt", false, runtime.GOMAXPROCS(0)},
			{"row", true, 1},
		} {
			b.Run(fmt.Sprintf("scale=%d/%s", scale, mode.name), func(b *testing.B) {
				f := buildFixture(b, netsim.NewChanBus(256), 4, 6, tN, lN, format.HWCName)
				defer f.eng.Close()
				f.eng.cfg.RowAtATime = mode.rowMode
				f.eng.cfg.WorkerThreads = mode.threads
				q := exampleQuery(b, f, 300, 400)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := f.eng.Run(q, Repartition); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				rows := float64(tN+lN) * float64(b.N)
				b.ReportMetric(rows/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}
