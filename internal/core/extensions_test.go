package core

import (
	"testing"

	"hybridwh/internal/cluster"
	"hybridwh/internal/format"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
)

// TestSpillingJoinAgrees forces the HDFS-side build tables to grace-spill
// and checks every repartition-based algorithm still produces the exact
// reference result.
func TestSpillingJoinAgrees(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 3000, 9000, format.HWCName)
	defer f.eng.Close()
	// Rebuild the engine config with a tiny spill budget.
	f.eng.cfg.SpillBudgetBytes = 2048
	f.eng.cfg.SpillDir = t.TempDir()

	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)
	for _, alg := range []Algorithm{Repartition, RepartitionBloom, Zigzag} {
		f.eng.Recorder().Reset()
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("%v with spilling: %v", alg, err)
		}
		checkResult(t, res, want, alg)
	}
}

// TestSemiJoinExactness: the exact semijoin must agree with the reference
// and, having no false positives, must ship no more DB tuples than zigzag.
func TestSemiJoinExactness(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 3000, 9000, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 600, 400)
	q := exampleQuery(t, f, 600, 400)

	f.eng.Recorder().Reset()
	res, err := f.eng.Run(q, SemiJoin)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want, SemiJoin)
	semiSent := f.eng.Recorder().Get(metrics.DBSentTuples)
	semiShuffle := f.eng.Recorder().Get(metrics.JENShuffleTuples)

	f.eng.Recorder().Reset()
	if _, err := f.eng.Run(q, Zigzag); err != nil {
		t.Fatal(err)
	}
	zigSent := f.eng.Recorder().Get(metrics.DBSentTuples)
	zigShuffle := f.eng.Recorder().Get(metrics.JENShuffleTuples)

	if semiSent > zigSent {
		t.Errorf("semijoin sent %d DB tuples, zigzag %d — exact filtering cannot send more", semiSent, zigSent)
	}
	if semiShuffle > zigShuffle {
		t.Errorf("semijoin shuffled %d, zigzag %d", semiShuffle, zigShuffle)
	}
}

// TestKeySetRoundTrip covers the semijoin wire encoding.
func TestKeySetRoundTrip(t *testing.T) {
	s := keySet{}
	for _, k := range []int64{-500, 0, 1, 2, 1000, 1 << 40} {
		s[k] = struct{}{}
	}
	back, err := unmarshalKeySet(marshalKeySet(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(s) {
		t.Fatalf("%d keys, want %d", len(back), len(s))
	}
	for k := range s {
		if !back.TestKey(k) {
			t.Errorf("key %d lost", k)
		}
	}
	if back.TestKey(999999) {
		t.Error("phantom key")
	}
	// Corrupt payloads error out.
	if _, err := unmarshalKeySet(nil); err == nil {
		t.Error("nil payload: want error")
	}
	if _, err := unmarshalKeySet([]byte{5}); err == nil {
		t.Error("truncated payload: want error")
	}
	// Empty set round-trips.
	empty, err := unmarshalKeySet(marshalKeySet(keySet{}))
	if err != nil || len(empty) != 0 {
		t.Errorf("empty set: %v, %v", empty, err)
	}
}

// TestDataNodeFailureSurvivedByReplication: with a DataNode down before
// planning, the coordinator assigns its blocks to replica holders and every
// algorithm still computes the exact result (replication factor 2).
func TestDataNodeFailureSurvivedByReplication(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 3, 5, 2000, 6000, format.TextName)
	defer f.eng.Close()
	if err := f.eng.JEN().HDFS().SetNodeDown(2, true); err != nil {
		t.Fatal(err)
	}
	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)
	for _, alg := range []Algorithm{Zigzag, DBSideBloom, Broadcast} {
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("%v with node 2 down: %v", alg, err)
		}
		checkResult(t, res, want, alg)
	}
}

// TestSinglePipeVsGroupedTransfer contrasts the paper's parallel grouped
// DB↔JEN transfer with classic single-pipe federation (all JEN workers
// funnel into one DB worker): results agree, but the single pipe
// concentrates all ingest on one endpoint.
func TestSinglePipeVsGroupedTransfer(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 2000, 6000, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)

	f.eng.Recorder().Reset()
	res, err := f.eng.Run(q, DBSide)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want, DBSide)
	grouped := f.eng.Recorder().Vector(metrics.DBIngestTuples)
	var groupedMax int64
	for _, v := range grouped {
		if v > groupedMax {
			groupedMax = v
		}
	}
	total := f.eng.Recorder().Get(metrics.DBIngestTuples)
	// Grouped transfer spreads ingest across workers: the max should be
	// well under the total.
	if groupedMax*2 > total && total > 100 {
		t.Errorf("grouped ingest skewed: max %d of total %d", groupedMax, total)
	}
}

// TestConcurrentQueries runs two different queries through the same engine
// simultaneously: per-query stream names keep the flows separate.
func TestConcurrentQueries(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 2000, 6000, format.HWCName)
	defer f.eng.Close()
	wantA := reference(t, f, 300, 400)
	wantB := reference(t, f, 600, 300)
	qA := exampleQuery(t, f, 300, 400)
	qB := exampleQuery(t, f, 600, 300)

	type out struct {
		res *Result
		err error
	}
	chA, chB := make(chan out, 1), make(chan out, 1)
	go func() {
		res, err := f.eng.Run(qA, Zigzag)
		chA <- out{res, err}
	}()
	go func() {
		res, err := f.eng.Run(qB, RepartitionBloom)
		chB <- out{res, err}
	}()
	a, b := <-chA, <-chB
	if a.err != nil || b.err != nil {
		t.Fatalf("concurrent runs: %v / %v", a.err, b.err)
	}
	checkResult(t, a.res, wantA, Zigzag)
	checkResult(t, b.res, wantB, RepartitionBloom)
}

// TestBroadcastRelayAgrees: the §4.3 relay transfer scheme must produce the
// same result while moving less data across the inter-cluster link.
func TestBroadcastRelayAgrees(t *testing.T) {
	f := buildFixture(t, netsim.NewChanBus(256), 4, 6, 2000, 6000, format.HWCName)
	defer f.eng.Close()
	want := reference(t, f, 300, 400)
	q := exampleQuery(t, f, 300, 400)

	res, err := f.eng.Run(q, Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want, Broadcast)
	directCross := f.eng.Bus().Counters().Bytes(cluster.Cross)

	f.eng.cfg.BroadcastRelay = true
	f.eng.Recorder().Reset()
	f.eng.Bus().Counters().Reset()
	res, err = f.eng.Run(q, Broadcast)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, want, Broadcast)
	relayCross := f.eng.Bus().Counters().Bytes(cluster.Cross)
	relayIntra := f.eng.Bus().Counters().Bytes(cluster.IntraHDFS)

	if !(relayCross < directCross/3) {
		t.Errorf("relay should slash cross-link bytes: %d vs %d", relayCross, directCross)
	}
	if relayIntra == 0 {
		t.Error("relay mode should move data intra-HDFS")
	}
}
