package core

import (
	"reflect"
	"testing"

	"hybridwh/internal/cluster"
	"hybridwh/internal/format"
	"hybridwh/internal/netsim"
)

// Tests for intra-worker parallelism (Config.WorkerThreads): the morsel
// scan/filter/shuffle stage and the partition-parallel probe must produce
// the same results and the same deterministic counters as the sequential
// pipeline, at any thread count, on every algorithm.

// threadSplitKeys are the per-thread diagnostic counters whose split across
// slots (and therefore whose .max, and for join.probe.split even presence)
// depends on goroutine scheduling. Everything else in a snapshot is part of
// the deterministic contract.
var threadSplitKeys = []string{
	"jen.morsel.tuples.max",
	"join.probe.split",
	"join.probe.split.max",
}

func dropThreadSplit(snap map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(snap))
	for k, v := range snap {
		out[k] = v
	}
	for _, k := range threadSplitKeys {
		delete(out, k)
	}
	return out
}

// parallelSweep runs every algorithm on a fresh identically-seeded fixture
// with the given thread count and returns per-algorithm result rows, cleaned
// counter snapshots and bus counters.
func parallelSweep(t *testing.T, threads int) (rows map[string][][]string, snaps map[string]map[string]int64, bus map[string]int64) {
	t.Helper()
	f := buildFixture(t, netsim.NewChanBus(256), 3, 5, 2000, 6000, format.HWCName)
	defer f.eng.Close()
	f.eng.cfg.WorkerThreads = threads
	q := exampleQuery(t, f, 300, 400)
	rows = map[string][][]string{}
	snaps = map[string]map[string]int64{}
	for _, alg := range Algorithms() {
		f.eng.Recorder().Reset()
		res, err := f.eng.Run(q, alg)
		if err != nil {
			t.Fatalf("threads=%d %v: %v", threads, alg, err)
		}
		var rendered [][]string
		for _, r := range res.Rows {
			rendered = append(rendered, []string{r.String()})
		}
		rows[alg.String()] = rendered
		snaps[alg.String()] = dropThreadSplit(res.Metrics)
	}
	bus = map[string]int64{}
	for _, cl := range []cluster.LinkClass{cluster.IntraDB, cluster.IntraHDFS, cluster.Cross} {
		bus["bytes."+cl.String()] = f.eng.Bus().Counters().Bytes(cl)
		bus["msgs."+cl.String()] = f.eng.Bus().Counters().Messages(cl)
	}
	return rows, snaps, bus
}

// TestWorkerThreadsDeterministic is the PR's determinism contract: a
// multi-threaded sweep must reproduce the single-threaded sweep's results
// and every counter outside the per-thread split — including bus message and
// byte totals — and a second multi-threaded sweep must reproduce the first
// (scheduling independence).
func TestWorkerThreadsDeterministic(t *testing.T) {
	seqRows, seqSnaps, seqBus := parallelSweep(t, 1)
	parRows, parSnaps, parBus := parallelSweep(t, 4)
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatal("result rows differ between WorkerThreads=1 and WorkerThreads=4")
	}
	for alg, ss := range seqSnaps {
		ps := parSnaps[alg]
		for k, v := range ss {
			if ps[k] != v {
				t.Errorf("%s %s: threads=1 %d, threads=4 %d", alg, k, v, ps[k])
			}
		}
		for k := range ps {
			if _, ok := ss[k]; !ok {
				t.Errorf("%s %s: present only with threads=4", alg, k)
			}
		}
	}
	if !reflect.DeepEqual(seqBus, parBus) {
		t.Fatalf("bus counters differ: threads=1 %v, threads=4 %v", seqBus, parBus)
	}

	againRows, againSnaps, againBus := parallelSweep(t, 4)
	if !reflect.DeepEqual(parRows, againRows) || !reflect.DeepEqual(parSnaps, againSnaps) || !reflect.DeepEqual(parBus, againBus) {
		t.Fatal("two WorkerThreads=4 sweeps disagree: parallel execution is not deterministic")
	}
}

// TestWireCompressionRoundTrip runs the shuffle-heavy algorithms over the
// TCP transport with frame compression on: results must be exact, and the
// repetitive fixture rows must actually shrink on the wire.
func TestWireCompressionRoundTrip(t *testing.T) {
	run := func(compressed bool, threads int) (res map[string][][]string, sentBytes int64) {
		f := buildFixture(t, netsim.NewTCPBus(256), 2, 3, 800, 2000, format.HWCName)
		defer f.eng.Close()
		f.eng.cfg.WireCompression = compressed
		f.eng.cfg.WorkerThreads = threads
		want := reference(t, f, 300, 400)
		q := exampleQuery(t, f, 300, 400)
		res = map[string][][]string{}
		for _, alg := range []Algorithm{Repartition, Zigzag, Broadcast, DBSide} {
			f.eng.Recorder().Reset()
			r, err := f.eng.Run(q, alg)
			if err != nil {
				t.Fatalf("compressed=%v %v: %v", compressed, alg, err)
			}
			checkResult(t, r, want, alg)
			var rendered [][]string
			for _, row := range r.Rows {
				rendered = append(rendered, []string{row.String()})
			}
			res[alg.String()] = rendered
			if alg == Repartition {
				sentBytes = r.Metrics["db.sent.bytes"] + r.Metrics["jen.shuffle.bytes"]
			}
		}
		return res, sentBytes
	}
	plainRes, plainBytes := run(false, 1)
	compRes, compBytes := run(true, 1)
	if !reflect.DeepEqual(plainRes, compRes) {
		t.Fatal("results differ with wire compression on")
	}
	if compBytes >= plainBytes {
		t.Fatalf("compressed wire bytes %d >= uncompressed %d; frames are not being compressed", compBytes, plainBytes)
	}
	// Compression composes with morsel parallelism (byte counters are
	// order-dependent there, so only results are asserted).
	parRes, _ := run(true, 4)
	if !reflect.DeepEqual(plainRes, parRes) {
		t.Fatal("results differ with wire compression + WorkerThreads=4")
	}
}
