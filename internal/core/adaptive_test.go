package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"hybridwh/internal/cluster"
	"hybridwh/internal/metrics"
	"hybridwh/internal/netsim"
)

// adaptTestConfig is the fixture engine config with the adaptive layer
// toggled; everything else matches skewTestConfig so adaptive-on and
// adaptive-off runs are directly comparable.
func adaptTestConfig(on bool) Config {
	return Config{
		BloomBits: 1 << 14, BloomHashes: 2, BatchRows: 64, WorkerThreads: 1,
		AdaptiveSwitch: on,
	}
}

// uniformKeys reproduces buildFixture's L key distribution so the
// misprediction regimes can reuse buildSkewFixtureKeys with caller configs.
func uniformKeys(rng *rand.Rand) int { return rng.Intn(300) }

// alignedKeys draws L keys inside T's filtered key prefix (tCor=300 keeps
// joinKeys ≤ 60), so the DB Bloom filter prunes almost nothing and the
// observed post-BF L' stays as expensive to shuffle as the raw scan — the
// regime where broadcast must win even for the BF algorithm variants.
func alignedKeys(rng *rand.Rand) int { return rng.Intn(60) }

// hotKeys90 plants a ~90% heavy hitter — well past the switch bar, where the
// planted 50% of buildSkewFixture would sit inside the hysteresis margin.
func hotKeys90(rng *rand.Rand) int {
	if rng.Intn(10) == 0 {
		return rng.Intn(300)
	}
	return 7
}

var adaptTransports = []struct {
	name   string
	newBus func() netsim.Bus
}{
	{"chan", func() netsim.Bus { return netsim.NewChanBus(256) }},
	{"tcp", func() netsim.Bus { return netsim.NewTCPBus(256) }},
}

// runAdaptivePair runs the same query on identically-seeded fixtures with
// the adaptive layer off and on, asserts both match the naive reference,
// and returns the adaptive run's result for decision assertions.
func runAdaptivePair(t *testing.T, newBus func() netsim.Bus, nextKey func(*rand.Rand) int,
	dbW, jenW, tN, lN int, tCor, lCor int32, alg Algorithm) *Result {
	t.Helper()
	var rows [2][]string
	var adaptive *Result
	for i, on := range []bool{false, true} {
		f := buildSkewFixtureKeys(t, newBus(), dbW, jenW, tN, lN, adaptTestConfig(on), nextKey)
		want := reference(t, f, tCor, lCor)
		if len(want) == 0 {
			t.Fatal("reference result empty; fixture too sparse")
		}
		res, err := f.eng.Run(exampleQuery(t, f, tCor, lCor), alg)
		if err != nil {
			t.Fatalf("adaptive=%v: %v", on, err)
		}
		checkResult(t, res, want, alg)
		for _, r := range res.Rows {
			rows[i] = append(rows[i], r.String())
		}
		if on {
			adaptive = res
		} else if res.Switched || res.SwitchReason != "" {
			t.Errorf("adaptive off but Switched=%v reason=%q", res.Switched, res.SwitchReason)
		}
		if err := f.eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Byte-identical rows, not just the same aggregates: switching may only
	// change where tuples meet, never what joins.
	if len(rows[0]) != len(rows[1]) {
		t.Fatalf("row count changed: %d static vs %d adaptive", len(rows[0]), len(rows[1]))
	}
	for j := range rows[0] {
		if rows[0][j] != rows[1][j] {
			t.Errorf("row %d differs: static %s vs adaptive %s", j, rows[0][j], rows[1][j])
		}
	}
	return adaptive
}

// TestAdaptiveSwitchesToBroadcast: the advisor's nightmare regime — the
// committed repartition assumed a T' worth shuffling for, but the observed
// T' is a few hundred rows while all of L survives both the predicate and
// the DB Bloom filter. The adaptive layer must abandon the shuffle
// mid-query, broadcast T' instead, and still return results byte-identical
// to the never-switch run, on both transports.
func TestAdaptiveSwitchesToBroadcast(t *testing.T) {
	for _, tr := range adaptTransports {
		for _, alg := range []Algorithm{Repartition, RepartitionBloom, Zigzag} {
			t.Run(fmt.Sprintf("%s/%s", tr.name, alg), func(t *testing.T) {
				// T' is ~180 rows (tCor=300); every L key joins, so the
				// committed plan would shuffle ~20000 rows to meet a hash
				// table a single broadcast replaces.
				res := runAdaptivePair(t, tr.newBus, alignedKeys, 2, 3, 600, 20000, 300, 400, alg)
				if !res.Switched || res.SwitchedTo != "broadcast" {
					t.Fatalf("Switched=%v to %q (%s), want broadcast", res.Switched, res.SwitchedTo, res.SwitchReason)
				}
				if !strings.Contains(res.SwitchReason, "broadcast") {
					t.Errorf("reason does not explain the switch: %q", res.SwitchReason)
				}
				if res.Metrics[metrics.AdaptDecisions] != 1 || res.Metrics[metrics.AdaptSwitches] != 1 {
					t.Errorf("adapt counters: decisions=%d switches=%d, want 1/1",
						res.Metrics[metrics.AdaptDecisions], res.Metrics[metrics.AdaptSwitches])
				}
				// The abandoned shuffle must not have moved L': the buffered
				// prefix is probed locally, not scattered.
				if moved := res.Metrics[metrics.JENShuffleTuples]; moved != 0 {
					t.Errorf("broadcast switch still shuffled %d tuples", moved)
				}
			})
		}
	}
}

// TestAdaptiveEscalatesToHybridShuffle: hidden skew — the plan assumed a
// uniform key distribution, but ~90% of the scanned prefix lands on one key.
// The plain hash shuffle would serialize the build on that key's home
// worker; the adaptive layer must escalate to the hybrid skew partitioner
// and keep the results byte-identical.
func TestAdaptiveEscalatesToHybridShuffle(t *testing.T) {
	for _, tr := range adaptTransports {
		for _, alg := range []Algorithm{Repartition, RepartitionBloom, Zigzag} {
			t.Run(fmt.Sprintf("%s/%s", tr.name, alg), func(t *testing.T) {
				// tCor=300 keeps T' large enough (~180 rows) that broadcast
				// is not the cheaper escape; the hot key dominates the build.
				res := runAdaptivePair(t, tr.newBus, hotKeys90, 2, 3, 600, 9000, 300, 400, alg)
				if !res.Switched || res.SwitchedTo != "hybrid-shuffle" {
					t.Fatalf("Switched=%v to %q (%s), want hybrid-shuffle", res.Switched, res.SwitchedTo, res.SwitchReason)
				}
				if hot := res.Metrics[metrics.JENShuffleHotTuples]; hot == 0 {
					t.Error("hybrid switch scattered no hot tuples")
				}
			})
		}
	}
}

// TestAdaptiveKeepsGoodPlan: when the observation confirms the plan — T'
// big enough to justify the shuffle, no skew — the hysteresis margin must
// hold the committed plan, with the decision recorded but no switch.
func TestAdaptiveKeepsGoodPlan(t *testing.T) {
	for _, alg := range []Algorithm{Repartition, Zigzag} {
		t.Run(alg.String(), func(t *testing.T) {
			res := runAdaptivePair(t, func() netsim.Bus { return netsim.NewChanBus(256) },
				uniformKeys, 2, 3, 600, 3000, 300, 400, alg)
			if res.Switched {
				t.Fatalf("switched to %q on a well-predicted plan: %s", res.SwitchedTo, res.SwitchReason)
			}
			if res.SwitchReason == "" || !strings.Contains(res.SwitchReason, "keep") {
				t.Errorf("keep decision not explained: %q", res.SwitchReason)
			}
			if res.Metrics[metrics.AdaptDecisions] != 1 || res.Metrics[metrics.AdaptSwitches] != 0 {
				t.Errorf("adapt counters: decisions=%d switches=%d, want 1/0",
					res.Metrics[metrics.AdaptDecisions], res.Metrics[metrics.AdaptSwitches])
			}
		})
	}
}

// TestInjectedFailuresAbortAdaptiveSwitch runs the fault matrix through the
// switch handshake: a worker killed before its observation is sent, during
// the decision exchange, or inside the post-switch data movement must still
// produce one classified error within the deadline and leak nothing. The
// fixture is the broadcast-switch regime, so the kill interleaves with a
// real mid-flight switch, and AdaptBatches=2 moves the observation point
// early enough that every kill lands at a distinct handshake phase.
func TestInjectedFailuresAbortAdaptiveSwitch(t *testing.T) {
	kills := []struct {
		name  string
		kill  string
		after int64
	}{
		{"jen-early", cluster.JENName(1), 2},
		{"jen-mid", cluster.JENName(1), 8},
		{"db-worker", cluster.DBName(1), 2},
	}
	for _, tr := range adaptTransports {
		for _, alg := range []Algorithm{Repartition, Zigzag} {
			for _, k := range kills {
				t.Run(fmt.Sprintf("%s/%s/%s", tr.name, alg, k.name), func(t *testing.T) {
					baseline := runtime.NumGoroutine()
					ctx, cancel := context.WithTimeout(context.Background(), abortTestDeadline)
					defer cancel()
					cfg := adaptTestConfig(true)
					cfg.AdaptBatches = 2
					f := buildSkewFixtureKeys(t, tr.newBus(), 2, 3, 600, 20000, cfg, alignedKeys)
					f.eng.Bus().(netsim.FaultInjector).KillEndpointAfter(k.kill, k.after)
					q := exampleQuery(t, f, 300, 400)
					start := time.Now()
					_, err := f.eng.RunCtx(ctx, q, alg)
					elapsed := time.Since(start)
					if err == nil {
						t.Fatal("query succeeded despite injected failure")
					}
					if !errors.Is(err, netsim.ErrEndpointDown) {
						t.Fatalf("err = %v, want errors.Is netsim.ErrEndpointDown", err)
					}
					if elapsed >= abortTestDeadline {
						t.Fatalf("abort took %v; switch handshake stalled until the deadline", elapsed)
					}
					if err := f.eng.Close(); err != nil {
						t.Logf("engine close after abort: %v", err)
					}
					checkNoGoroutineLeak(t, baseline)
				})
			}
		}
	}
}
