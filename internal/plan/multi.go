package plan

import (
	"fmt"

	"hybridwh/internal/expr"
	"hybridwh/internal/format"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// EdgeAlg is the physical algorithm chosen for one fact-dimension join edge.
// Snowflake dimension-dimension edges never appear here: the analyzer folds
// them into a DB-side pre-join (DimPlan.Sub), the N-way analogue of the
// paper's DB-side join.
type EdgeAlg int

const (
	// EdgeRepartition shuffles the fact side by the edge key and ships the
	// dimension partitions to their JEN owners (the paper's repartition
	// join per edge).
	EdgeRepartition EdgeAlg = iota
	// EdgeBroadcast ships the whole filtered dimension to every JEN worker
	// so the fact side never moves for this edge.
	EdgeBroadcast
)

// String implements fmt.Stringer.
func (a EdgeAlg) String() string {
	switch a {
	case EdgeRepartition:
		return "repartition"
	case EdgeBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("EdgeAlg(%d)", int(a))
	}
}

// DimJoinPlan pre-joins a snowflake sub-dimension into its parent dimension
// inside the database before the component ships to the fact join. The
// component wire layout becomes: parent wire ++ sub wire.
type DimJoinPlan struct {
	Table string
	Pred  expr.Expr // over the sub-dimension base layout
	Proj  []int     // sub-dimension base columns shipped (join key first)
	// ParentFKWire is the position in the parent dimension's wire layout of
	// the foreign key into Table. The sub-dimension's join key is position 0
	// of its own wire layout.
	ParentFKWire int
}

// DimPlan describes one dimension component: a filtered, projected EDW
// table, optionally with a snowflake sub-dimension pre-joined DB-side.
type DimPlan struct {
	Table string
	Pred  expr.Expr // over the base layout
	Proj  []int     // base columns shipped (edge join key first)
	Sub   *DimJoinPlan
}

// EdgeExec is one fact-dimension join edge of a multi-join plan, with its
// independently chosen physical algorithm.
type EdgeExec struct {
	Dim DimPlan

	// DimKeyWire is the join key position in the component wire layout
	// (parent wire ++ sub wire when Sub is set).
	DimKeyWire    int
	DimWireSchema types.Schema

	// FactKeyCol is the fact-side join key position in the combined layout
	// current when this edge runs. Edge keys always live in the fact wire
	// prefix, so this is stable as the layout grows.
	FactKeyCol int

	Algorithm EdgeAlg
	// UseBloom pushes this dimension's key Bloom filter into the fact scan
	// (cascaded semi-join reduction). Filters from every bloom-enabled edge
	// are applied to the scan together, so a fact row failing any dimension
	// drops before it is shuffled.
	UseBloom bool

	// Estimates recorded by the analyzer for EXPLAIN and adaptive
	// re-costing: filtered dimension cardinality/bytes and the estimated
	// selectivity of the edge against the fact side.
	EstDimRows  int64
	EstDimBytes int64
	EstSel      float64
}

// MultiQuery is the executable decomposition of an N-way star/snowflake
// join: one fact table in HDFS joined to an ordered sequence of dimension
// components from the EDW. Edges execute as pipeline stages; the combined
// layout grows per edge:
//
//	fact wire ++ edge[0] dim wire ++ edge[1] dim wire ++ ...
//
// PostJoin, GroupBy and Aggs are expressed over the final combined layout.
type MultiQuery struct {
	FactTable string

	// Fact (HDFS) side, mirroring JoinQuery's HDFS conventions.
	FactScanProj     []int
	FactPred         expr.Expr // over the scan layout
	FactPrunerRanges []format.IntRange
	FactWire         []int // indexes into the scan layout
	FactWireSchema   types.Schema

	Edges []EdgeExec

	// Over the final combined layout.
	PostJoin     expr.Expr
	GroupBy      []expr.Expr
	Aggs         []relop.AggSpec
	OutputSchema types.Schema

	// FactCardHint estimates the filtered fact cardinality (like
	// JoinQuery.HDFSCardHint). Zero means "use catalog rows".
	FactCardHint int64
}

// Validate checks internal consistency.
func (q *MultiQuery) Validate() error {
	if q.FactTable == "" {
		return fmt.Errorf("plan: fact table name is required")
	}
	if len(q.FactScanProj) == 0 || len(q.FactWire) == 0 {
		return fmt.Errorf("plan: fact projections are empty")
	}
	for _, w := range q.FactWire {
		if w < 0 || w >= len(q.FactScanProj) {
			return fmt.Errorf("plan: fact wire column %d outside scan layout of %d", w, len(q.FactScanProj))
		}
	}
	if q.FactWireSchema.Len() != len(q.FactWire) {
		return fmt.Errorf("plan: fact wire schema width %d != %d", q.FactWireSchema.Len(), len(q.FactWire))
	}
	if len(q.Edges) == 0 {
		return fmt.Errorf("plan: multi-join needs at least one edge")
	}
	width := len(q.FactWire)
	for i, e := range q.Edges {
		if e.Dim.Table == "" {
			return fmt.Errorf("plan: edge %d has no dimension table", i)
		}
		if len(e.Dim.Proj) == 0 {
			return fmt.Errorf("plan: edge %d dimension projection is empty", i)
		}
		wireLen := len(e.Dim.Proj)
		if e.Dim.Sub != nil {
			if len(e.Dim.Sub.Proj) == 0 {
				return fmt.Errorf("plan: edge %d sub-dimension projection is empty", i)
			}
			if e.Dim.Sub.ParentFKWire < 0 || e.Dim.Sub.ParentFKWire >= len(e.Dim.Proj) {
				return fmt.Errorf("plan: edge %d sub-dimension FK %d outside parent wire of %d", i, e.Dim.Sub.ParentFKWire, len(e.Dim.Proj))
			}
			wireLen += len(e.Dim.Sub.Proj)
		}
		if e.DimKeyWire < 0 || e.DimKeyWire >= wireLen {
			return fmt.Errorf("plan: edge %d dim key %d outside wire layout of %d", i, e.DimKeyWire, wireLen)
		}
		if e.DimWireSchema.Len() != wireLen {
			return fmt.Errorf("plan: edge %d dim wire schema width %d != %d", i, e.DimWireSchema.Len(), wireLen)
		}
		if e.FactKeyCol < 0 || e.FactKeyCol >= len(q.FactWire) {
			return fmt.Errorf("plan: edge %d fact key %d outside fact wire of %d", i, e.FactKeyCol, len(q.FactWire))
		}
		width += wireLen
	}
	if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("plan: analytic queries need grouping or aggregation")
	}
	return nil
}

// CombinedSchema returns the final layout post-join expressions see: fact
// wire followed by every edge's dimension wire, in edge order.
func (q *MultiQuery) CombinedSchema() types.Schema {
	out := q.FactWireSchema
	for _, e := range q.Edges {
		out = out.Concat(e.DimWireSchema)
	}
	return out
}

// Pruner returns the HWC row-group pruner for the fact scan, or nil.
func (q *MultiQuery) Pruner() *format.Pruner {
	if len(q.FactPrunerRanges) == 0 {
		return nil
	}
	return &format.Pruner{Ranges: q.FactPrunerRanges}
}
