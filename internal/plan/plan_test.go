package plan

import (
	"testing"

	"hybridwh/internal/expr"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

func dbSchema() types.Schema {
	return types.NewSchema(
		types.C("uniqKey", types.KindInt64),
		types.C("joinKey", types.KindInt32),
		types.C("corPred", types.KindInt32),
		types.C("tdate", types.KindDate),
	)
}

func hdfsSchema() types.Schema {
	return types.NewSchema(
		types.C("joinKey", types.KindInt32),
		types.C("corPred", types.KindInt32),
		types.C("ldate", types.KindDate),
		types.C("grp", types.KindString),
	)
}

func builder() *Builder {
	return NewBuilder("T", dbSchema(), "L", hdfsSchema())
}

func baseQuery(t *testing.T) *JoinQuery {
	t.Helper()
	q, err := builder().
		DBPred(corLE(2, 10)).
		HDFSPred(corLE(1, 20)).
		Join(1, 0).
		Ship([]int{3}, []int{2, 3}).
		GroupBy(expr.NewCol(2, "grp", types.KindString)).
		Aggregates(relop.AggSpec{Kind: relop.AggCount, Name: "cnt"}).
		CardHint(1234).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func corLE(col int, v int32) expr.Expr {
	return expr.NewCmp(expr.LE, expr.NewCol(col, "corPred", types.KindInt32), expr.NewLit(types.Int32(v)))
}

func TestBuilderLayouts(t *testing.T) {
	q := baseQuery(t)
	// HDFS wire: joinKey prepended, then declared ldate(2), grp(3).
	if len(q.HDFSWire) != 3 || q.HDFSWireKey != 0 {
		t.Errorf("HDFSWire = %v key %d", q.HDFSWire, q.HDFSWireKey)
	}
	if q.HDFSWireSchema.Cols[0].Name != "joinKey" || q.HDFSWireSchema.Cols[2].Name != "grp" {
		t.Errorf("wire schema = %s", q.HDFSWireSchema)
	}
	// Scan layout adds the predicate column corPred(1).
	if len(q.HDFSScanProj) != 4 {
		t.Errorf("scan proj = %v", q.HDFSScanProj)
	}
	// DB wire: joinKey prepended, then tdate.
	if len(q.DBProj) != 2 || q.DBProj[0] != 1 || q.DBWireKey != 0 {
		t.Errorf("DBProj = %v key %d", q.DBProj, q.DBWireKey)
	}
	// The remapped HDFS predicate evaluates over the scan layout.
	scanRow := types.Row{types.Int32(5), types.Date(1), types.String("g"), types.Int32(15)}
	ok, err := expr.EvalPred(q.HDFSPred, scanRow)
	if err != nil || !ok {
		t.Errorf("remapped pred: %v %v", ok, err)
	}
	if q.HDFSCardHint != 1234 {
		t.Errorf("card hint = %d", q.HDFSCardHint)
	}
	// Combined schema concatenates wire layouts.
	if got := q.CombinedSchema().Len(); got != 5 {
		t.Errorf("combined width = %d", got)
	}
	// Output: group then count.
	if q.OutputSchema.Len() != 2 || q.OutputSchema.Cols[1].Name != "cnt" {
		t.Errorf("output = %s", q.OutputSchema)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderJoinKeyAlreadyShipped(t *testing.T) {
	q, err := builder().
		Join(1, 0).
		Ship([]int{1, 3}, []int{0, 3}).
		Aggregates(relop.AggSpec{Kind: relop.AggCount}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// No duplicate prepend.
	if len(q.DBProj) != 2 || len(q.HDFSWire) != 2 {
		t.Errorf("proj = %v / %v", q.DBProj, q.HDFSWire)
	}
}

func TestBuilderPrunerRanges(t *testing.T) {
	q := baseQuery(t)
	p := q.Pruner()
	if p == nil || len(p.Ranges) != 1 {
		t.Fatalf("pruner = %+v", p)
	}
	if p.Ranges[0].Col != 1 || p.Ranges[0].Hi != 20 {
		t.Errorf("range = %+v", p.Ranges[0])
	}
	// No int-range predicates → nil pruner.
	q2, err := builder().Join(1, 0).Ship(nil, nil).
		Aggregates(relop.AggSpec{Kind: relop.AggCount}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if q2.Pruner() != nil {
		t.Errorf("pruner = %+v", q2.Pruner())
	}
}

func TestBuilderColumnRangeErrors(t *testing.T) {
	if _, err := builder().Join(1, 0).Ship([]int{99}, nil).
		Aggregates(relop.AggSpec{Kind: relop.AggCount}).Build(); err == nil {
		t.Error("DB column out of range: want error")
	}
	if _, err := builder().Join(1, 0).Ship(nil, []int{99}).
		Aggregates(relop.AggSpec{Kind: relop.AggCount}).Build(); err == nil {
		t.Error("HDFS column out of range: want error")
	}
	// Predicate referencing an out-of-range HDFS column.
	if _, err := builder().HDFSPred(corLE(9, 1)).Join(1, 0).Ship(nil, nil).
		Aggregates(relop.AggSpec{Kind: relop.AggCount}).Build(); err == nil {
		t.Error("predicate column out of range: want error")
	}
}

func TestValidateRejections(t *testing.T) {
	good := baseQuery(t)
	cases := []func(q *JoinQuery){
		func(q *JoinQuery) { q.DBTable = "" },
		func(q *JoinQuery) { q.HDFSScanProj = nil },
		func(q *JoinQuery) { q.HDFSWire = []int{99} },
		func(q *JoinQuery) { q.HDFSWireKey = 99 },
		func(q *JoinQuery) { q.DBProj = nil },
		func(q *JoinQuery) { q.DBWireKey = -1 },
		func(q *JoinQuery) { q.GroupBy, q.Aggs = nil, nil },
		func(q *JoinQuery) { q.HDFSWireSchema = types.Schema{} },
		func(q *JoinQuery) { q.DBWireSchema = types.Schema{} },
	}
	for i, mutate := range cases {
		q := *good
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestAvgOutputKind(t *testing.T) {
	q, err := builder().Join(1, 0).Ship(nil, nil).
		Aggregates(
			relop.AggSpec{Kind: relop.AggAvg, Input: expr.NewCol(0, "joinKey", types.KindInt32)},
			relop.AggSpec{Kind: relop.AggSum, Input: expr.NewCol(0, "joinKey", types.KindInt32)},
		).Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.OutputSchema.Cols[0].Kind != types.KindFloat64 {
		t.Errorf("avg output kind = %v", q.OutputSchema.Cols[0].Kind)
	}
	if q.OutputSchema.Cols[1].Kind != types.KindInt64 {
		t.Errorf("sum output kind = %v", q.OutputSchema.Cols[1].Kind)
	}
	// Unnamed aggregates get their kind name.
	if q.OutputSchema.Cols[0].Name != "avg" {
		t.Errorf("default agg name = %q", q.OutputSchema.Cols[0].Name)
	}
}
