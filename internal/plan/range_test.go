package plan

import (
	"testing"

	"hybridwh/internal/expr"
	"hybridwh/internal/types"
)

func corPredLE(v int32) expr.Expr {
	return expr.NewCmp(expr.LE, expr.NewCol(2, "corPred", types.KindInt32), expr.NewLit(types.Int32(v)))
}

func TestRangeOf(t *testing.T) {
	col2 := expr.NewCol(2, "corPred", types.KindInt32)
	cases := []struct {
		pred   expr.Expr
		lo, hi int64
		ok     bool
	}{
		{corPredLE(10), -1 << 62, 10, true},
		{expr.NewCmp(expr.GE, col2, expr.NewLit(types.Int32(5))), 5, 1<<62 - 1, true},
		{expr.NewAnd(
			expr.NewCmp(expr.GT, col2, expr.NewLit(types.Int32(4))),
			expr.NewCmp(expr.LT, col2, expr.NewLit(types.Int32(10))),
		), 5, 9, true},
		{expr.NewCmp(expr.EQ, col2, expr.NewLit(types.Int32(7))), 7, 7, true},
		// Literal on the left flips the operator.
		{expr.NewCmp(expr.GE, expr.NewLit(types.Int32(10)), col2), -1 << 62, 10, true},
		// OR involving the column spoils the range.
		{expr.NewOr(corPredLE(10), corPredLE(20)), 0, 0, false},
		// Unrelated predicate: no constraint.
		{expr.NewCmp(expr.LE, expr.NewCol(3, "x", types.KindInt32), expr.NewLit(types.Int32(1))), 0, 0, false},
	}
	for i, c := range cases {
		lo, hi, ok := RangeOf(c.pred, 2)
		if ok != c.ok {
			t.Errorf("case %d: ok = %v", i, ok)
			continue
		}
		if !ok {
			continue
		}
		if c.lo > -1<<61 && lo != c.lo {
			t.Errorf("case %d: lo = %d, want %d", i, lo, c.lo)
		}
		if c.hi < 1<<61 && hi != c.hi {
			t.Errorf("case %d: hi = %d, want %d", i, hi, c.hi)
		}
	}
}
