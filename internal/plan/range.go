package plan

import (
	"math"

	"hybridwh/internal/expr"
	"hybridwh/internal/types"
)

// RangeOf extracts the conjunctive range constraint [lo, hi] that pred
// places on column col: comparisons between the bare column and integer
// literals, joined by AND. It returns ok=false when the predicate does not
// constrain the column that way (e.g. the column appears under an OR).
// Both the database optimizer (index range selection) and the HWC pruner
// use this extraction.
func RangeOf(pred expr.Expr, col int) (lo, hi int64, ok bool) {
	lo, hi = math.MinInt64, math.MaxInt64
	found := false
	var walk func(e expr.Expr) bool // false if the node breaks conjunctivity
	walk = func(e expr.Expr) bool {
		switch n := e.(type) {
		case *expr.Logic:
			if n.Op != expr.And {
				// A disjunction mentioning the column spoils the range.
				for _, c := range expr.ColumnSet(n) {
					if c == col {
						return false
					}
				}
				return true
			}
			for _, term := range n.Terms {
				if !walk(term) {
					return false
				}
			}
			return true
		case *expr.Cmp:
			c, lit, op, isCol := colLitCmp(n)
			if !isCol || c != col {
				return true
			}
			switch op {
			case expr.EQ:
				if lit > lo {
					lo = lit
				}
				if lit < hi {
					hi = lit
				}
			case expr.LE:
				if lit < hi {
					hi = lit
				}
			case expr.LT:
				if lit-1 < hi {
					hi = lit - 1
				}
			case expr.GE:
				if lit > lo {
					lo = lit
				}
			case expr.GT:
				if lit+1 > lo {
					lo = lit + 1
				}
			case expr.NE:
				return true // no range contribution
			}
			found = true
			return true
		default:
			return true
		}
	}
	if pred == nil || !walk(pred) || !found {
		return 0, 0, false
	}
	return lo, hi, true
}

// colLitCmp decomposes a comparison into (column, literal, normalized op),
// flipping the operator when the literal is on the left.
func colLitCmp(c *expr.Cmp) (col int, lit int64, op expr.CmpOp, ok bool) {
	if l, isCol := c.L.(*expr.Col); isCol {
		if r, isLit := c.R.(*expr.Lit); isLit && intLit(r) {
			return l.Index, r.V.Int(), c.Op, true
		}
	}
	if r, isCol := c.R.(*expr.Col); isCol {
		if l, isLit := c.L.(*expr.Lit); isLit && intLit(l) {
			return r.Index, l.V.Int(), flipCmp(c.Op), true
		}
	}
	return 0, 0, 0, false
}

func intLit(l *expr.Lit) bool {
	switch l.V.K {
	case types.KindInt32, types.KindInt64, types.KindDate, types.KindTime:
		return true
	default:
		return false
	}
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}
