// Package plan defines the decomposed two-table join query that the join
// algorithms execute: local predicates per side, projections (scan-level and
// wire-level), the equi-join columns, post-join predicates, grouping and
// aggregation. internal/sqlparse produces these from SQL; the benchmark
// harness also builds them directly.
//
// Layout conventions, used consistently by every algorithm:
//
//   - HDFS scan layout: the columns in HDFSScanProj, in that order, as
//     materialized by the table scan (projection pushdown). HDFSPred is
//     evaluated over this layout.
//   - HDFS wire layout: the columns in HDFSWire (indexes into the scan
//     layout) — what is shuffled or shipped after filtering. Predicate-only
//     columns are dropped here, as in the paper's L'.
//   - DB wire layout: the base-table columns in DBProj — T' as shipped.
//   - Combined layout: HDFS wire row followed by DB wire row. PostJoin,
//     GroupBy and Aggs are expressed over this layout.
package plan

import (
	"fmt"

	"hybridwh/internal/expr"
	"hybridwh/internal/format"
	"hybridwh/internal/relop"
	"hybridwh/internal/types"
)

// JoinQuery is the executable decomposition of a two-table hybrid join.
type JoinQuery struct {
	DBTable   string
	HDFSTable string

	// HDFS side.
	HDFSScanProj     []int
	HDFSPred         expr.Expr // over the scan layout
	HDFSPrunerRanges []format.IntRange
	HDFSWire         []int // indexes into the scan layout
	HDFSWireKey      int   // join key position in the wire layout
	HDFSWireSchema   types.Schema

	// DB side.
	DBPred        expr.Expr // over the base layout
	DBProj        []int     // base columns shipped as T'
	DBWireKey     int       // join key position in the DB wire layout
	DBWireSchema  types.Schema
	DBJoinColBase int // join key column in the base layout

	// Combined layout: HDFS wire ++ DB wire.
	PostJoin     expr.Expr
	GroupBy      []expr.Expr
	Aggs         []relop.AggSpec
	OutputSchema types.Schema

	// HDFSCardHint estimates |L'| for the DB optimizer's join-strategy
	// choice — the cardinality hint the paper passes to the read_hdfs UDF.
	// Zero means "use catalog rows".
	HDFSCardHint int64
}

// Validate checks internal consistency.
func (q *JoinQuery) Validate() error {
	if q.DBTable == "" || q.HDFSTable == "" {
		return fmt.Errorf("plan: both table names are required")
	}
	if len(q.HDFSScanProj) == 0 || len(q.HDFSWire) == 0 {
		return fmt.Errorf("plan: HDFS projections are empty")
	}
	for _, w := range q.HDFSWire {
		if w < 0 || w >= len(q.HDFSScanProj) {
			return fmt.Errorf("plan: HDFS wire column %d outside scan layout of %d", w, len(q.HDFSScanProj))
		}
	}
	if q.HDFSWireKey < 0 || q.HDFSWireKey >= len(q.HDFSWire) {
		return fmt.Errorf("plan: HDFS wire key %d outside wire layout of %d", q.HDFSWireKey, len(q.HDFSWire))
	}
	if len(q.DBProj) == 0 {
		return fmt.Errorf("plan: DB projection is empty")
	}
	if q.DBWireKey < 0 || q.DBWireKey >= len(q.DBProj) {
		return fmt.Errorf("plan: DB wire key %d outside wire layout of %d", q.DBWireKey, len(q.DBProj))
	}
	if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		return fmt.Errorf("plan: analytic queries need grouping or aggregation")
	}
	if q.HDFSWireSchema.Len() != len(q.HDFSWire) {
		return fmt.Errorf("plan: HDFS wire schema width %d != %d", q.HDFSWireSchema.Len(), len(q.HDFSWire))
	}
	if q.DBWireSchema.Len() != len(q.DBProj) {
		return fmt.Errorf("plan: DB wire schema width %d != %d", q.DBWireSchema.Len(), len(q.DBProj))
	}
	return nil
}

// CombinedSchema returns the layout post-join expressions see.
func (q *JoinQuery) CombinedSchema() types.Schema {
	return q.HDFSWireSchema.Concat(q.DBWireSchema)
}

// Pruner returns the HWC row-group pruner for the HDFS scan, or nil.
func (q *JoinQuery) Pruner() *format.Pruner {
	if len(q.HDFSPrunerRanges) == 0 {
		return nil
	}
	return &format.Pruner{Ranges: q.HDFSPrunerRanges}
}

// Builder assembles a JoinQuery from base-table schemas, doing the
// projection bookkeeping (scan layout, wire layout, remapping) that is easy
// to get wrong by hand.
type Builder struct {
	q          JoinQuery
	dbSchema   types.Schema
	hdfsSchema types.Schema

	hdfsPredBase expr.Expr // over the HDFS base layout
	hdfsWireBase []int     // base columns to ship
	hdfsKeyBase  int

	err error
}

// NewBuilder starts a builder for the given tables.
func NewBuilder(dbTable string, dbSchema types.Schema, hdfsTable string, hdfsSchema types.Schema) *Builder {
	return &Builder{
		q:          JoinQuery{DBTable: dbTable, HDFSTable: hdfsTable},
		dbSchema:   dbSchema,
		hdfsSchema: hdfsSchema,
	}
}

// DBPred sets the database-side local predicate (base layout).
func (b *Builder) DBPred(p expr.Expr) *Builder { b.q.DBPred = p; return b }

// HDFSPred sets the HDFS-side local predicate (base layout; remapped later).
func (b *Builder) HDFSPred(p expr.Expr) *Builder { b.hdfsPredBase = p; return b }

// Join sets the equi-join columns by base-layout index.
func (b *Builder) Join(dbCol, hdfsCol int) *Builder {
	b.q.DBJoinColBase = dbCol
	b.hdfsKeyBase = hdfsCol
	return b
}

// Ship declares the base columns each side must deliver to the join (the
// join keys are added automatically).
func (b *Builder) Ship(dbCols, hdfsCols []int) *Builder {
	b.q.DBProj = append([]int(nil), dbCols...)
	b.hdfsWireBase = append([]int(nil), hdfsCols...)
	return b
}

// PostJoin sets the post-join predicate over the combined wire layout
// (HDFS wire columns first, then DB wire columns).
func (b *Builder) PostJoin(p expr.Expr) *Builder { b.q.PostJoin = p; return b }

// GroupBy sets the grouping expressions over the combined wire layout.
func (b *Builder) GroupBy(es ...expr.Expr) *Builder { b.q.GroupBy = es; return b }

// Aggregates sets the aggregate list.
func (b *Builder) Aggregates(aggs ...relop.AggSpec) *Builder { b.q.Aggs = aggs; return b }

// CardHint sets the |L'| estimate passed to the DB optimizer.
func (b *Builder) CardHint(rows int64) *Builder { b.q.HDFSCardHint = rows; return b }

// Build finalizes the query: computes the scan projection (wire ∪ predicate
// columns), remaps the HDFS predicate onto the scan layout, derives pruner
// ranges and wire schemas, and validates.
func (b *Builder) Build() (*JoinQuery, error) {
	if b.err != nil {
		return nil, b.err
	}
	q := b.q

	// HDFS wire layout: declared columns plus the join key (first if absent).
	wireBase := b.hdfsWireBase
	if !contains(wireBase, b.hdfsKeyBase) {
		wireBase = append([]int{b.hdfsKeyBase}, wireBase...)
	}
	// Scan layout: wire columns plus predicate-only columns.
	scanProj := append([]int(nil), wireBase...)
	for _, c := range expr.ColumnSet(b.hdfsPredBase) {
		if !contains(scanProj, c) {
			scanProj = append(scanProj, c)
		}
	}
	for _, c := range scanProj {
		if c < 0 || c >= b.hdfsSchema.Len() {
			return nil, fmt.Errorf("plan: HDFS column %d out of range", c)
		}
	}
	q.HDFSScanProj = scanProj

	// Remap the HDFS predicate from base to scan layout.
	baseToScan := map[int]int{}
	for i, c := range scanProj {
		baseToScan[c] = i
	}
	pred, err := expr.Remap(b.hdfsPredBase, baseToScan)
	if err != nil {
		return nil, fmt.Errorf("plan: remap HDFS predicate: %w", err)
	}
	q.HDFSPred = pred

	// Wire layout as indexes into the scan layout.
	q.HDFSWire = nil
	for _, c := range wireBase {
		q.HDFSWire = append(q.HDFSWire, baseToScan[c])
	}
	q.HDFSWireKey = indexOf(wireBase, b.hdfsKeyBase)
	q.HDFSWireSchema = b.hdfsSchema.Project(wireBase)

	// Pruner ranges from the base predicate (HWC stats are per base column).
	q.HDFSPrunerRanges = prunerRanges(b.hdfsPredBase, b.hdfsSchema)

	// DB wire layout: declared columns plus the join key.
	if !contains(q.DBProj, q.DBJoinColBase) {
		q.DBProj = append([]int{q.DBJoinColBase}, q.DBProj...)
	}
	for _, c := range q.DBProj {
		if c < 0 || c >= b.dbSchema.Len() {
			return nil, fmt.Errorf("plan: DB column %d out of range", c)
		}
	}
	q.DBWireKey = indexOf(q.DBProj, q.DBJoinColBase)
	q.DBWireSchema = b.dbSchema.Project(q.DBProj)

	// Output schema: group-by columns then aggregate outputs.
	var out types.Schema
	for i, g := range q.GroupBy {
		name := fmt.Sprintf("group%d", i)
		out.Cols = append(out.Cols, types.C(name, g.Kind()))
	}
	for _, a := range q.Aggs {
		k := types.KindInt64
		if a.Kind == relop.AggAvg {
			k = types.KindFloat64
		}
		name := a.Name
		if name == "" {
			name = a.Kind.String()
		}
		out.Cols = append(out.Cols, types.C(name, k))
	}
	q.OutputSchema = out

	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &q, nil
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// PrunerRangesFor extracts HWC pruner ranges from a conjunctive base-layout
// predicate; the N-way analyzer uses it when lowering the fact scan.
func PrunerRangesFor(pred expr.Expr, schema types.Schema) []format.IntRange {
	return prunerRanges(pred, schema)
}

// prunerRanges extracts closed int ranges per column from a conjunctive
// base-layout predicate, for HWC row-group pruning.
func prunerRanges(pred expr.Expr, schema types.Schema) []format.IntRange {
	var out []format.IntRange
	for _, c := range expr.ColumnSet(pred) {
		switch schema.Cols[c].Kind {
		case types.KindInt32, types.KindInt64, types.KindDate, types.KindTime:
		default:
			continue
		}
		lo, hi, ok := RangeOf(pred, c)
		if ok {
			out = append(out, format.IntRange{Col: c, Lo: lo, Hi: hi})
		}
	}
	return out
}
