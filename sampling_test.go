package hybridwh

import (
	"errors"
	"math"
	"testing"

	"hybridwh/internal/expr"
	"hybridwh/internal/jen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/plan"
	"hybridwh/internal/types"
)

const (
	// sampleTableRows rows across 4 files: each file is one contiguous
	// 2000-row region in a single HDFS block, one file per JEN worker — so
	// any one worker's holdings are a single region of the table.
	sampleTableRows = 8000
	// sampleBudget covers the whole table when strided (8000/4 = 2000 rows
	// per worker = that worker's full holdings), so the strided estimate is
	// placement-independent and exact.
	sampleBudget = sampleTableRows
)

// openClusteredSample loads an HDFS table whose rows are deliberately
// clustered by file: the predicate column v passes (v=1) only in files 0–1
// and the hot join key 7 lives only in files 2–3. Every statistic is
// therefore regional — any estimator that samples a single worker's blocks
// sees a biased slice of the table.
func openClusteredSample(t *testing.T) *Warehouse {
	t.Helper()
	w, err := Open(Config{DBWorkers: 3, JENWorkers: 4, HDFSFiles: 4, BlockSize: 64 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })

	pt := types.NewSchema(types.C("k", types.KindInt64))
	ev := types.NewSchema(
		types.C("uid", types.KindInt64),
		types.C("v", types.KindInt32),
	)
	var ptRows, evRows []types.Row
	for i := 0; i < 64; i++ {
		ptRows = append(ptRows, types.Row{types.Int64(int64(i))})
	}
	const n = sampleTableRows
	for i := 0; i < n; i++ {
		// CreateHDFSTable deals rows round-robin across the 4 files, so
		// clustering by i%4 makes files 0–1 all-pass / cold and files 2–3
		// all-fail / hot. Cold keys 100.. are disjoint from the hot key so
		// the hot share is exactly 0.5.
		uid, v := int64(100+i%64), int32(0)
		if i%4 < 2 {
			v = 1 // σ_L(v ≥ 1) is exactly 0.5, confined to files 0–1
		} else {
			uid = 7 // the hot key holds half of L, confined to files 2–3
		}
		evRows = append(evRows, types.Row{types.Int64(uid), types.Int32(v)})
	}
	err = w.LoadTables(
		TableDef{Name: "pt", Schema: pt}, SliceSource(ptRows),
		TableDef{Name: "ev", Schema: ev}, SliceSource(evRows),
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// worker0Estimate reproduces the pre-fix estimators' sampling loop — a
// bounded scan of worker 0's blocks only — so the test can compare the old
// bias against the strided estimate on identical data.
func worker0Estimate(t *testing.T, w *Warehouse, jq *plan.JoinQuery, sampleRows int,
	hit func(r types.Row) (bool, error)) float64 {
	t.Helper()
	var scanned, passed int64
	scanPlan, err := w.jenc.PlanScan(jq.HDFSTable)
	if err != nil {
		t.Fatal(err)
	}
	err = w.jenc.ScanFilter(jen.ScanSpec{
		Plan: scanPlan, Worker: 0, Proj: jq.HDFSScanProj,
	}, func(r types.Row) error {
		scanned++
		ok, err := hit(r)
		if err != nil {
			return err
		}
		if ok {
			passed++
		}
		if scanned >= int64(sampleRows) {
			return errEnoughSample
		}
		return nil
	})
	if err != nil && !errors.Is(err, errEnoughSample) {
		t.Fatal(err)
	}
	if scanned == 0 {
		return 1
	}
	return float64(passed) / float64(scanned)
}

// TestSamplingStridesAcrossWorkers is the regression test for the
// single-worker sampling bias: EstimateSigmaL and EstimateHotKeyShare used
// to scan Worker 0 only, so with position-clustered data (locality-aware
// block assignment keeps file runs together) the sample reflected one
// worker's blocks, not the table. The fix strides the budget across every
// JEN worker. Asserted two ways: the per-worker scan counters prove all
// workers were read, and on clustered data the strided estimate is closer
// to ground truth than the old worker-0-only loop on the same table.
func TestSamplingStridesAcrossWorkers(t *testing.T) {
	w := openClusteredSample(t)

	jq, err := w.Plan("select count(*) from pt, ev where pt.k = ev.uid and ev.v >= 1")
	if err != nil {
		t.Fatal(err)
	}

	// Stride proof: every worker's scan counter moves during one estimate.
	// The budget covers each worker's full holdings, so the strided sample
	// is the whole table and the estimate is exact no matter how the
	// locality-aware placement dealt the file runs; the worker-0-only loop
	// under the same budget still reads one worker's slice.
	w.rec.Reset()
	est, err := w.EstimateSigmaL(jq, sampleBudget)
	if err != nil {
		t.Fatal(err)
	}
	scanned := w.rec.Vector(metrics.JENScanRows)
	if len(scanned) < w.jenc.Workers() {
		t.Fatalf("scan counters cover %d workers, want %d: %v", len(scanned), w.jenc.Workers(), scanned)
	}
	for wk, rows := range scanned[:w.jenc.Workers()] {
		if rows == 0 {
			t.Errorf("worker %d scanned 0 rows during sampling: sample is not strided (%v)", wk, scanned)
		}
	}

	// Bias proof, σ_L: truth is 0.5 (front-loaded). The worker-0 loop reads
	// only worker 0's file runs; the strided estimate must not be further
	// from truth, and must not collapse to a degenerate all-pass/all-fail
	// reading of one region.
	const truthSigma = 0.5
	old := worker0Estimate(t, w, jq, sampleBudget, func(r types.Row) (bool, error) {
		return expr.EvalPred(jq.HDFSPred, r)
	})
	t.Logf("σ_L: truth %.3f, strided %.3f, worker-0-only %.3f", truthSigma, est, old)
	if math.Abs(est-truthSigma) > 0.05 {
		t.Errorf("strided σ_L %.3f, want ≈%.1f (full-coverage sample is exact)", est, truthSigma)
	}
	if math.Abs(est-truthSigma) > math.Abs(old-truthSigma) {
		t.Errorf("strided σ_L %.3f is further from truth %.1f than worker-0-only %.3f", est, truthSigma, old)
	}

	// Bias proof, hot-key share: key 7 holds half of L but only in the back
	// half of the file — invisible from a front-region worker, dominant from
	// a back-region one. Same comparative assertion on an all-pass plan.
	jqAll, err := w.Plan("select count(*) from pt, ev where pt.k = ev.uid and ev.v >= 0")
	if err != nil {
		t.Fatal(err)
	}
	const truthHot = 0.5
	hot, err := w.EstimateHotKeyShare(jqAll, sampleBudget)
	if err != nil {
		t.Fatal(err)
	}
	keyIdx := jqAll.HDFSWire[jqAll.HDFSWireKey]
	hotCounts := map[int64]int64{}
	var hotPassed float64
	oldHot := 0.0
	worker0Estimate(t, w, jqAll, sampleBudget, func(r types.Row) (bool, error) {
		hotPassed++
		hotCounts[r[keyIdx].Int()]++
		return true, nil
	})
	for _, c := range hotCounts {
		if s := float64(c) / hotPassed; s > oldHot {
			oldHot = s
		}
	}
	t.Logf("hot share: truth %.3f, strided %.3f, worker-0-only %.3f", truthHot, hot, oldHot)
	if math.Abs(hot-truthHot) > 0.05 {
		t.Errorf("strided hot share %.3f, want ≈%.1f (full-coverage sample is exact)", hot, truthHot)
	}
	if math.Abs(hot-truthHot) > math.Abs(oldHot-truthHot) {
		t.Errorf("strided hot share %.3f is further from truth %.1f than worker-0-only %.3f", hot, truthHot, oldHot)
	}
}
