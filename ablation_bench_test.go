package hybridwh_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// isolates one mechanism and reports the metric it moves, so the paper's
// design rationale is checkable rather than asserted.

import (
	"testing"

	"hybridwh"
	"hybridwh/internal/core"
	"hybridwh/internal/datagen"
)

const ablScale = 50000

func ablData() datagen.Data {
	return datagen.Data{
		TRows: int64(1.6e9 / ablScale),
		LRows: int64(15e9 / ablScale),
		Keys:  int64(16e6 / ablScale),
	}
}

func ablWarehouse(b *testing.B, mutate func(*hybridwh.Config)) *hybridwh.Warehouse {
	b.Helper()
	cfg := hybridwh.Config{Scale: ablScale, Seed: 4}
	if mutate != nil {
		mutate(&cfg)
	}
	w, err := hybridwh.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.LoadPaperData(ablData()); err != nil {
		w.Close()
		b.Fatal(err)
	}
	return w
}

func ablQuery(b *testing.B, w *hybridwh.Warehouse) (string, []hybridwh.Option) {
	b.Helper()
	wl, err := datagen.Solve(w.Data(), datagen.Selectivities{SigmaT: 0.1, SigmaL: 0.4, ST: 0.2, SL: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	return hybridwh.PaperQuerySQL(wl), []hybridwh.Option{hybridwh.WithCardHint(hybridwh.ExpectedLPrimeRows(wl))}
}

// BenchmarkAblationLocality contrasts locality-aware block assignment
// (Section 4.2) with the locality-oblivious baseline: the metric is the
// fraction of scan bytes served by short-circuit local reads.
func BenchmarkAblationLocality(b *testing.B) {
	for _, tc := range []struct {
		name string
		off  bool
	}{{"locality-aware", false}, {"random-assignment", true}} {
		b.Run(tc.name, func(b *testing.B) {
			w := ablWarehouse(b, func(c *hybridwh.Config) { c.NoLocality = tc.off })
			defer w.Close()
			sql, opts := ablQuery(b, w)
			var localFrac float64
			for i := 0; i < b.N; i++ {
				w.HDFS().ResetReadCounters()
				if _, err := w.Query(sql, append(opts, hybridwh.WithAlgorithm(core.Zigzag))...); err != nil {
					b.Fatal(err)
				}
				l, r := w.HDFS().LocalReadBytes(), w.HDFS().RemoteReadBytes()
				localFrac = float64(l) / float64(l+r+1)
			}
			b.ReportMetric(localFrac*100, "%local_reads")
		})
	}
}

// BenchmarkAblationBloomSize sweeps the Bloom filter geometry: smaller
// filters raise the false-positive rate and with it the shuffled tuples —
// the m/k trade-off the paper fixes at 128M bits / 2 hashes.
func BenchmarkAblationBloomSize(b *testing.B) {
	base := uint64(128_000_000 / ablScale)
	for _, tc := range []struct {
		name string
		bits uint64
	}{{"bits÷8", base / 8}, {"paper", base}, {"bits×8", base * 8}} {
		b.Run(tc.name, func(b *testing.B) {
			w := ablWarehouse(b, func(c *hybridwh.Config) { c.BloomBits = tc.bits })
			defer w.Close()
			sql, opts := ablQuery(b, w)
			var shuffled float64
			for i := 0; i < b.N; i++ {
				res, err := w.Query(sql, append(opts, hybridwh.WithAlgorithm(core.RepartitionBloom))...)
				if err != nil {
					b.Fatal(err)
				}
				shuffled = float64(res.Counters["jen.shuffle.tuples"]) * ablScale
			}
			b.ReportMetric(shuffled/1e6, "Mtuples_shuffled_paper")
		})
	}
}

// BenchmarkAblationZigzagDBSide checks the Section 3.4 dismissal: the
// zigzag variant that joins in the database scans HDFS twice and loses to
// the HDFS-side zigzag.
func BenchmarkAblationZigzagDBSide(b *testing.B) {
	for _, alg := range []core.Algorithm{core.Zigzag, core.ZigzagDBVariant} {
		b.Run(alg.String(), func(b *testing.B) {
			w := ablWarehouse(b, nil)
			defer w.Close()
			sql, opts := ablQuery(b, w)
			var est float64
			for i := 0; i < b.N; i++ {
				res, err := w.Query(sql, append(opts, hybridwh.WithAlgorithm(alg))...)
				if err != nil {
					b.Fatal(err)
				}
				est = res.EstimatedTime.Total
			}
			b.ReportMetric(est, "s_paper")
		})
	}
}

// BenchmarkAblationSemijoinVsBloom contrasts exact key sets with Bloom
// filters: the semijoin ships fewer DB tuples (no false positives) but far
// more filter bytes.
func BenchmarkAblationSemijoinVsBloom(b *testing.B) {
	for _, alg := range []core.Algorithm{core.Zigzag, core.SemiJoin} {
		b.Run(alg.String(), func(b *testing.B) {
			w := ablWarehouse(b, nil)
			defer w.Close()
			sql, opts := ablQuery(b, w)
			var sent, filterBytes float64
			for i := 0; i < b.N; i++ {
				res, err := w.Query(sql, append(opts, hybridwh.WithAlgorithm(alg))...)
				if err != nil {
					b.Fatal(err)
				}
				sent = float64(res.Counters["db.sent.tuples"]) * ablScale
				filterBytes = float64(res.Counters["bloom.bytes"]) * ablScale
			}
			b.ReportMetric(sent/1e6, "Mtuples_db_sent_paper")
			b.ReportMetric(filterBytes/1e9, "GB_filters_paper")
		})
	}
}

// BenchmarkAblationSpill compares the all-in-memory build against the
// grace-spilling build (the paper's future work) on the same join.
func BenchmarkAblationSpill(b *testing.B) {
	for _, tc := range []struct {
		name   string
		budget int64
	}{{"in-memory", 0}, {"spill-64KiB", 64 << 10}} {
		b.Run(tc.name, func(b *testing.B) {
			w := ablWarehouse(b, func(c *hybridwh.Config) {
				c.SpillBudgetBytes = tc.budget
				c.SpillDir = b.TempDir()
			})
			defer w.Close()
			sql, opts := ablQuery(b, w)
			var groups int
			for i := 0; i < b.N; i++ {
				res, err := w.Query(sql, append(opts, hybridwh.WithAlgorithm(core.Zigzag))...)
				if err != nil {
					b.Fatal(err)
				}
				groups = len(res.Rows)
			}
			b.ReportMetric(float64(groups), "groups")
		})
	}
}

// BenchmarkAblationBroadcastPath contrasts the two §4.3 broadcast transfer
// schemes: direct DB→all-workers (the paper's choice) vs the relay through
// one JEN worker. The relay trades inter-cluster bytes for an extra
// intra-HDFS round and latency.
func BenchmarkAblationBroadcastPath(b *testing.B) {
	for _, tc := range []struct {
		name  string
		relay bool
	}{{"direct", false}, {"relay", true}} {
		b.Run(tc.name, func(b *testing.B) {
			w := ablWarehouse(b, func(c *hybridwh.Config) { c.BroadcastRelay = tc.relay })
			defer w.Close()
			wl, err := datagen.Solve(w.Data(), datagen.Selectivities{SigmaT: 0.01, SigmaL: 0.2, ST: 0.5, SL: 0.1})
			if err != nil {
				b.Fatal(err)
			}
			sql := hybridwh.PaperQuerySQL(wl)
			var est, crossGB float64
			for i := 0; i < b.N; i++ {
				res, err := w.Query(sql, hybridwh.WithAlgorithm(core.Broadcast),
					hybridwh.WithCardHint(hybridwh.ExpectedLPrimeRows(wl)))
				if err != nil {
					b.Fatal(err)
				}
				est = res.EstimatedTime.Total
				crossGB = w.Model().CrossBytes(w.Engine().Bus().Counters(), ablScale) / 1e9
			}
			b.ReportMetric(est, "s_paper")
			b.ReportMetric(crossGB, "GB_cross_paper")
		})
	}
}
