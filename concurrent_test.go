package hybridwh

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"testing"
	"time"

	"hybridwh/internal/core"
	"hybridwh/internal/datagen"
	"hybridwh/internal/metrics"
	"hybridwh/internal/sched"
)

// concurrentData is small enough that a 64-query storm stays fast, large
// enough that a scan query's build side is a meaningful slice of the
// global budget.
func concurrentData() datagen.Data {
	return datagen.Data{TRows: 6000, LRows: 40_000, Keys: 400, Seed: 7, DateDays: 30, Groups: 20}
}

func sortedRows(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r.String())
	}
	sort.Strings(out)
	return out
}

func rowsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentMixedWorkloadMatchesSerial runs the acceptance scenario: a
// 64-client mixed workload (selective point lookups and heavier scans)
// against a global memory budget far below the sum of the queries' build
// sides. Every result must equal its serial execution, the governor's peak
// reservation must stay within the budget, and everything must be released
// at the end.
func TestConcurrentMixedWorkloadMatchesSerial(t *testing.T) {
	const budget = int64(4 << 20)
	w, err := Open(Config{
		DBWorkers: 2, JENWorkers: 2, BlockSize: 64 << 10, Seed: 3,
		MemBudgetBytes: budget, MaxConcurrent: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.LoadPaperData(concurrentData()); err != nil {
		t.Fatal(err)
	}

	scanWL, err := datagen.Solve(w.Data(), datagen.Selectivities{SigmaT: 0.1, SigmaL: 0.4, ST: 0.2, SL: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pointWL, err := datagen.Solve(w.Data(), datagen.Selectivities{SigmaT: 0.01, SigmaL: 0.2, ST: 0.5, SL: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	type mix struct {
		sql  string
		opts []Option
	}
	mixes := []mix{
		{PaperQuerySQL(scanWL), []Option{WithAlgorithm(core.Repartition), WithCardHint(ExpectedLPrimeRows(scanWL))}},
		{PaperQuerySQL(pointWL), []Option{WithAlgorithm(core.DBSideBloom), WithCardHint(ExpectedLPrimeRows(pointWL))}},
	}

	// Serial baselines (still via the scheduler, but one at a time).
	want := make([][]string, len(mixes))
	for i, m := range mixes {
		res, err := w.Query(m.sql, m.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("mix %d: empty serial result; fixture too sparse", i)
		}
		want[i] = sortedRows(res)
	}

	// The 64-client storm: three scans to one point lookup.
	const clients = 64
	handles := make([]*QueryHandle, clients)
	kinds := make([]int, clients)
	for c := 0; c < clients; c++ {
		k := 0
		if c%4 == 3 {
			k = 1
		}
		kinds[c] = k
		h, err := w.Submit(context.Background(), mixes[k].sql, mixes[k].opts...)
		if err != nil {
			t.Fatal(err)
		}
		handles[c] = h
	}
	for c, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
		if got := sortedRows(res); !rowsEqual(got, want[kinds[c]]) {
			t.Fatalf("client %d (mix %d): concurrent rows differ from serial\n got %v\nwant %v",
				c, kinds[c], got, want[kinds[c]])
		}
	}

	rec := w.Recorder()
	if peak := rec.GaugePeak(metrics.MemReservedBytes); peak > budget {
		t.Errorf("peak reserved %d exceeded the %d budget", peak, budget)
	} else if peak <= 0 {
		t.Error("peak reserved never rose; admission control did not account anything")
	}
	if got := w.Scheduler().Governor().Reserved(); got != 0 {
		t.Errorf("governor still holds %d bytes after all queries finished", got)
	}
	if got := rec.Get(metrics.SchedCompleted); got != clients+int64(len(mixes)) {
		t.Errorf("completed = %d, want %d", got, clients+len(mixes))
	}
	// The scenario's premise: the budget really was smaller than the sum of
	// the build sides (JoinBuildTuples counts every hash-table insert across
	// all queries; ~96 bytes per 3-column wire row).
	if sum := rec.Get(metrics.JoinBuildTuples) * 96; sum <= budget {
		t.Errorf("aggregate build side %d B did not exceed the %d B budget; scenario too small", sum, budget)
	}
	t.Logf("spill activity: evictions=%d repartitions=%d build-rows=%d overshoot-peak=%d",
		rec.Get(metrics.SpillEvictions), rec.Get(metrics.SpillRepartitions),
		rec.Get(metrics.SpillBuildRows), rec.GaugePeak(metrics.MemOvershootBytes))
}

// TestConcurrentKillReleasesEverything submits 8 in-flight scans, kills one
// mid-flight, and requires: the 7 survivors return serial-identical rows,
// the killed query's grant and charges are fully released, and no worker
// goroutines outlive the warehouse.
func TestConcurrentKillReleasesEverything(t *testing.T) {
	baseline := runtime.NumGoroutine()
	w, err := Open(Config{
		DBWorkers: 2, JENWorkers: 2, BlockSize: 64 << 10, Seed: 3,
		MemBudgetBytes: 32 << 20, MaxConcurrent: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LoadPaperData(concurrentData()); err != nil {
		t.Fatal(err)
	}
	wl, err := datagen.Solve(w.Data(), datagen.Selectivities{SigmaT: 0.1, SigmaL: 0.4, ST: 0.2, SL: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sql := PaperQuerySQL(wl)
	opts := []Option{WithAlgorithm(core.Repartition), WithCardHint(ExpectedLPrimeRows(wl))}

	serial, err := w.Query(sql, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedRows(serial)

	const inflight = 8
	handles := make([]*QueryHandle, inflight)
	for i := range handles {
		h, err := w.Submit(context.Background(), sql, opts...)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	victim := handles[3]

	// Kill the victim as soon as the process list shows it running (it may
	// briefly be queued behind admission bookkeeping).
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st sched.State
		for _, p := range w.Processes() {
			if p.ID == victim.ID() {
				st = p.State
			}
		}
		if st == sched.StateRunning {
			break
		}
		if st != sched.StateQueued {
			t.Fatalf("victim reached state %v before the kill", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %d never started; processes: %+v", victim.ID(), w.Processes())
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.Kill(victim.ID()); err != nil {
		t.Fatal(err)
	}

	killed := 0
	for i, h := range handles {
		res, err := h.Wait()
		if h == victim {
			if !errors.Is(err, sched.ErrKilled) {
				t.Fatalf("victim error = %v, want sched.ErrKilled", err)
			}
			killed++
			continue
		}
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		if got := sortedRows(res); !rowsEqual(got, want) {
			t.Fatalf("survivor %d: rows differ from serial after the kill", i)
		}
	}
	if killed != 1 {
		t.Fatalf("killed %d queries, want 1", killed)
	}
	if got := w.Scheduler().Governor().Reserved(); got != 0 {
		t.Fatalf("killed query leaked %d reserved bytes", got)
	}
	if got := w.Recorder().Get(metrics.SchedKilled); got != 1 {
		t.Errorf("killed counter = %d, want 1", got)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Every worker goroutine (engine programs, routers, scheduler runners)
	// must be gone once the warehouse closes.
	leakDeadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for n > baseline && time.Now().Before(leakDeadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutine leak after kill: %d live, baseline %d; stacks:\n%s", n, baseline, buf)
	}
}
