package hybridwh_test

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the artefact end to end — data load, SQL planning,
// the distributed join itself — at a reduced scale, and reports the
// calibrated paper-scale execution-time estimate of a representative cell
// as a custom metric, plus shape conformance.
//
// The full-resolution reproduction (scale 1/1000, all cells) runs via:
//
//	go run ./cmd/hwbench -exp all -check -scale 1000

import (
	"fmt"
	"testing"

	"hybridwh/internal/experiments"
)

// benchScale is the verified experiment resolution (1/10000 of the paper's
// rows — the same EXPERIMENTS.md uses, so the shape checks hold).
const benchScale = 10000

func benchmarkExperiment(b *testing.B, id string) {
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.RunConfig{Scale: benchScale, Seed: 1}
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(exp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	if last == nil {
		return
	}
	if bad := last.CheckShape(); len(bad) > 0 {
		for _, msg := range bad {
			b.Logf("shape: %s", msg)
		}
	}
	// Report the last cell's series as custom metrics.
	row := last.Rows[len(last.Rows)-1]
	for _, s := range last.Series {
		if v, ok := row.Values[s]; ok {
			unit := fmt.Sprintf("s_paper/%s", s)
			if last.Exp.Counts {
				unit = fmt.Sprintf("tuples/%s", s)
			}
			b.ReportMetric(v, sanitizeUnit(unit))
		}
	}
}

func sanitizeUnit(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func BenchmarkTable1(b *testing.B) { benchmarkExperiment(b, "table1") }
func BenchmarkFig8a(b *testing.B)  { benchmarkExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { benchmarkExperiment(b, "fig8b") }
func BenchmarkFig9a(b *testing.B)  { benchmarkExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { benchmarkExperiment(b, "fig9b") }
func BenchmarkFig10a(b *testing.B) { benchmarkExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchmarkExperiment(b, "fig10b") }
func BenchmarkFig11a(b *testing.B) { benchmarkExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchmarkExperiment(b, "fig11b") }
func BenchmarkFig12a(b *testing.B) { benchmarkExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchmarkExperiment(b, "fig12b") }
func BenchmarkFig13a(b *testing.B) { benchmarkExperiment(b, "fig13a") }
func BenchmarkFig13b(b *testing.B) { benchmarkExperiment(b, "fig13b") }
func BenchmarkFig14a(b *testing.B) { benchmarkExperiment(b, "fig14a") }
func BenchmarkFig14b(b *testing.B) { benchmarkExperiment(b, "fig14b") }
func BenchmarkFig15a(b *testing.B) { benchmarkExperiment(b, "fig15a") }
func BenchmarkFig15b(b *testing.B) { benchmarkExperiment(b, "fig15b") }
