package hybridwh

import (
	"fmt"

	"hybridwh/internal/jen"
	"hybridwh/internal/types"
)

// The generic loading API: bring your own schemas and rows instead of the
// paper's synthetic dataset (see examples/clickstream for the Section 2
// scenario built this way). One table lives in the parallel database, one on
// HDFS; queries then join them by name.

// TableDef describes a user table.
type TableDef struct {
	Name   string
	Schema types.Schema
	// DistCol is the database distribution column (DB table only; defaults
	// to column 0).
	DistCol int
	// Indexes are composite index column lists to build (DB table only).
	Indexes [][]int
}

// RowSource streams rows into a loader; datagen.Data.GenT and GenL have
// this shape, and any user iterator fits.
type RowSource func(emit func(types.Row) error) error

// SliceSource adapts a row slice to a RowSource.
func SliceSource(rows []types.Row) RowSource {
	return func(emit func(types.Row) error) error {
		for _, r := range rows {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}
}

// LoadTables loads a custom pair of tables: db into the parallel database
// (with statistics and any requested indexes) and hdfs onto the HDFS cluster
// in the configured format. It replaces LoadPaperData for non-synthetic
// workloads; call it once per warehouse.
func (w *Warehouse) LoadTables(db TableDef, dbRows RowSource, hdfs TableDef, hdfsRows RowSource) error {
	if w.dbTable != "" {
		return fmt.Errorf("hybridwh: warehouse already loaded with %s ⋈ %s", w.dbTable, w.hdfsName)
	}
	if db.Name == "" || hdfs.Name == "" {
		return fmt.Errorf("hybridwh: both tables need names")
	}
	tbl, err := w.db.CreateTable(db.Name, db.Schema, db.DistCol)
	if err != nil {
		return err
	}
	const loadBatch = 8192
	batch := make([]types.Row, 0, loadBatch)
	err = dbRows(func(r types.Row) error {
		batch = append(batch, r)
		if len(batch) == loadBatch {
			if err := tbl.Load(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := tbl.Load(batch); err != nil {
		return err
	}
	tbl.BuildStats(128)
	for i, cols := range db.Indexes {
		if err := tbl.CreateIndex(fmt.Sprintf("%s_ix%d", db.Name, i), cols); err != nil {
			return err
		}
	}

	dir := "/warehouse/" + hdfs.Name
	if err := jen.CreateHDFSTable(w.dfs, w.cat, hdfs.Name, dir, w.cfg.Format,
		hdfs.Schema, w.cfg.HDFSFiles, hdfsRows); err != nil {
		return err
	}
	w.dbTable = db.Name
	w.hdfsName = hdfs.Name
	return nil
}
